#include "galois/gf2_poly.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mecc::galois {
namespace {

TEST(Gf2Poly, ZeroPolynomial) {
  Gf2Poly z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.degree(), -1);
  EXPECT_EQ(z.to_string(), "0");
}

TEST(Gf2Poly, FromMaskAndDegree) {
  const auto p = Gf2Poly::from_mask(0b1011);  // x^3 + x + 1
  EXPECT_EQ(p.degree(), 3);
  EXPECT_TRUE(p.coeff(0));
  EXPECT_TRUE(p.coeff(1));
  EXPECT_FALSE(p.coeff(2));
  EXPECT_TRUE(p.coeff(3));
  EXPECT_EQ(p.to_string(), "x^3 + x + 1");
}

TEST(Gf2Poly, AdditionIsXor) {
  const auto a = Gf2Poly::from_mask(0b1011);
  const auto b = Gf2Poly::from_mask(0b0110);
  const auto s = a + b;
  EXPECT_EQ(s, Gf2Poly::from_mask(0b1101));
  EXPECT_TRUE((a + a).is_zero());
}

TEST(Gf2Poly, MultiplicationSmallCases) {
  // (x + 1)^2 = x^2 + 1 over GF(2).
  const auto xp1 = Gf2Poly::from_mask(0b11);
  EXPECT_EQ(xp1 * xp1, Gf2Poly::from_mask(0b101));
  // (x + 1)(x^2 + x + 1) = x^3 + 1.
  EXPECT_EQ(xp1 * Gf2Poly::from_mask(0b111), Gf2Poly::from_mask(0b1001));
}

TEST(Gf2Poly, MulByZeroAndOne) {
  const auto p = Gf2Poly::from_mask(0b110101);
  EXPECT_TRUE((p * Gf2Poly{}).is_zero());
  EXPECT_EQ(p * Gf2Poly::from_mask(1), p);
}

TEST(Gf2Poly, DivModIdentity) {
  // For random a, b != 0: a == (a/b)*b + (a mod b), deg(a mod b) < deg(b).
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = Gf2Poly::from_mask(rng.engine()());
    std::uint64_t bm = rng.engine()() & 0xffff;
    if (bm == 0) bm = 1;
    const auto b = Gf2Poly::from_mask(bm);
    const auto q = a.div(b);
    const auto r = a.mod(b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.degree(), b.degree() == -1 ? 0 : b.degree());
  }
}

TEST(Gf2Poly, ModByHigherDegreeIsIdentity) {
  const auto a = Gf2Poly::from_mask(0b101);
  const auto b = Gf2Poly::from_mask(0b10001);
  EXPECT_EQ(a.mod(b), a);
  EXPECT_TRUE(a.div(b).is_zero());
}

TEST(Gf2Poly, MonomialShape) {
  const auto m = Gf2Poly::monomial(7);
  EXPECT_EQ(m.degree(), 7);
  EXPECT_EQ(m.bits().popcount(), 1u);
}

TEST(Gf2Poly, FromBitsTrimsHighZeros) {
  BitVec bits(100);
  bits.set(0, true);
  bits.set(10, true);
  const auto p = Gf2Poly::from_bits(bits);
  EXPECT_EQ(p.degree(), 10);
}

TEST(Gf2Poly, SetCoeffGrows) {
  Gf2Poly p;
  p.set_coeff(90, true);
  EXPECT_EQ(p.degree(), 90);
  p.set_coeff(90, false);
  EXPECT_EQ(p.degree(), -1);
}

TEST(Gf2Poly, MultiplicationCommutesAndAssociates) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = Gf2Poly::from_mask(rng.engine()() & 0xffffff);
    const auto b = Gf2Poly::from_mask(rng.engine()() & 0xffffff);
    const auto c = Gf2Poly::from_mask(rng.engine()() & 0xffff);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

}  // namespace
}  // namespace mecc::galois
