// Property sweep of the field axioms across every supported field size.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "galois/gf.h"
#include "galois/gf2_poly.h"

namespace mecc::galois {
namespace {

class GfAllM : public ::testing::TestWithParam<unsigned> {};

TEST_P(GfAllM, InverseAndFermatHoldOnSamples) {
  const GaloisField gf(GetParam());
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Elem a = static_cast<Elem>(1 + rng.next_below(gf.order()));
    EXPECT_EQ(gf.mul(a, gf.inv(a)), 1u);
    EXPECT_EQ(gf.pow(a, gf.order()), 1u);
  }
}

TEST_P(GfAllM, LogAlphaRoundTripOnSamples) {
  const GaloisField gf(GetParam());
  Rng rng(100 + GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t e =
        static_cast<std::uint32_t>(rng.next_below(gf.order()));
    EXPECT_EQ(gf.log(gf.alpha_pow(e)), e);
  }
}

TEST_P(GfAllM, PrimitivePolyIsIrreducibleOverSmallFactors) {
  // No root in GF(2) and no degree-1 factor: p(0) = p(1) = 1.
  const GaloisField gf(GetParam());
  const auto p = Gf2Poly::from_mask(gf.primitive_poly());
  EXPECT_TRUE(p.coeff(0));
  int weight = 0;
  for (int k = 0; k <= p.degree(); ++k) {
    weight += p.coeff(static_cast<std::size_t>(k)) ? 1 : 0;
  }
  EXPECT_EQ(weight % 2, 1);  // odd weight -> p(1) == 1
}

TEST_P(GfAllM, MinimalPolyOfAlphaDividesGroupPolynomial) {
  // m_alpha(x) divides x^(2^m - 1) + 1 for every field (alpha's order
  // divides the group order). Restrict to small m: the dense polynomial
  // would be huge beyond that.
  const unsigned m = GetParam();
  if (m > 12) GTEST_SKIP() << "x^(2^m-1)+1 too large for the dense rep";
  const GaloisField gf(m);
  const auto min_poly = Gf2Poly::from_mask(gf.minimal_poly(1));
  Gf2Poly group = Gf2Poly::monomial(gf.order()) + Gf2Poly::from_mask(1);
  EXPECT_TRUE(group.mod(min_poly).is_zero());
}

TEST_P(GfAllM, MinimalPolyOfAlphaHasDegreeM) {
  const GaloisField gf(GetParam());
  const auto p = Gf2Poly::from_mask(gf.minimal_poly(1));
  EXPECT_EQ(p.degree(), static_cast<int>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllFieldSizes, GfAllM,
                         ::testing::Range(3u, 17u));

}  // namespace
}  // namespace mecc::galois
