#include "galois/gf.h"

#include <gtest/gtest.h>

#include <set>

namespace mecc::galois {
namespace {

TEST(GaloisField, RejectsBadM) {
  EXPECT_THROW(GaloisField(2), std::invalid_argument);
  EXPECT_THROW(GaloisField(17), std::invalid_argument);
  EXPECT_NO_THROW(GaloisField(3));
  EXPECT_NO_THROW(GaloisField(16));
}

TEST(GaloisField, AlphaGeneratesWholeGroup) {
  const GaloisField gf(10);
  std::set<Elem> seen;
  for (std::uint32_t i = 0; i < gf.order(); ++i) {
    seen.insert(gf.alpha_pow(i));
  }
  EXPECT_EQ(seen.size(), gf.order());  // all non-zero elements hit once
  EXPECT_EQ(seen.count(0), 0u);
}

TEST(GaloisField, LogIsInverseOfAlphaPow) {
  const GaloisField gf(8);
  for (std::uint32_t i = 0; i < gf.order(); ++i) {
    EXPECT_EQ(gf.log(gf.alpha_pow(i)), i);
  }
}

TEST(GaloisField, MulDivInverse) {
  const GaloisField gf(6);
  for (Elem a = 1; a < gf.size(); ++a) {
    EXPECT_EQ(gf.mul(a, gf.inv(a)), 1u);
    for (Elem b = 1; b < gf.size(); ++b) {
      const Elem p = gf.mul(a, b);
      EXPECT_EQ(gf.div(p, b), a);
      EXPECT_EQ(gf.div(p, a), b);
    }
  }
}

TEST(GaloisField, MulByZeroIsZero) {
  const GaloisField gf(5);
  for (Elem a = 0; a < gf.size(); ++a) {
    EXPECT_EQ(gf.mul(a, 0), 0u);
    EXPECT_EQ(gf.mul(0, a), 0u);
  }
}

TEST(GaloisField, MulIsCommutativeAndAssociative) {
  const GaloisField gf(5);
  for (Elem a = 0; a < gf.size(); ++a) {
    for (Elem b = 0; b < gf.size(); ++b) {
      EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
      for (Elem c = 0; c < gf.size(); c += 7) {
        EXPECT_EQ(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
      }
    }
  }
}

TEST(GaloisField, DistributesOverAddition) {
  const GaloisField gf(6);
  for (Elem a = 0; a < gf.size(); a += 3) {
    for (Elem b = 0; b < gf.size(); b += 5) {
      for (Elem c = 0; c < gf.size(); c += 7) {
        EXPECT_EQ(gf.mul(a, GaloisField::add(b, c)),
                  GaloisField::add(gf.mul(a, b), gf.mul(a, c)));
      }
    }
  }
}

TEST(GaloisField, PowMatchesRepeatedMul) {
  const GaloisField gf(8);
  const Elem a = gf.alpha_pow(37);
  Elem acc = 1;
  for (std::uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(gf.pow(a, e), acc);
    acc = gf.mul(acc, a);
  }
  EXPECT_EQ(gf.pow(0, 0), 1u);
  EXPECT_EQ(gf.pow(0, 5), 0u);
}

TEST(GaloisField, FermatLittleTheorem) {
  // x^(2^m - 1) == 1 for every non-zero x.
  const GaloisField gf(10);
  for (Elem x = 1; x < gf.size(); x += 13) {
    EXPECT_EQ(gf.pow(x, gf.order()), 1u);
  }
}

TEST(GaloisField, CyclotomicCosetClosedUnderDoubling) {
  const GaloisField gf(10);
  const auto coset = gf.cyclotomic_coset(5);
  std::set<std::uint32_t> s(coset.begin(), coset.end());
  for (auto e : coset) {
    EXPECT_EQ(s.count(static_cast<std::uint32_t>((2ull * e) % gf.order())),
              1u);
  }
}

TEST(GaloisField, MinimalPolyHasAlphaPowerAsRoot) {
  const GaloisField gf(10);
  for (std::uint32_t i : {1u, 3u, 5u, 7u, 9u, 11u}) {
    const std::uint64_t mp = gf.minimal_poly(i);
    // Evaluate the GF(2)-coefficient polynomial at alpha^i in GF(2^m).
    Elem acc = 0;
    for (int k = 63; k >= 0; --k) {
      acc = gf.mul(acc, gf.alpha_pow(i));
      if ((mp >> k) & 1u) acc = GaloisField::add(acc, 1);
    }
    EXPECT_EQ(acc, 0u) << "alpha^" << i << " must be a root";
  }
}

TEST(GaloisField, MinimalPolyDegreeEqualsCosetSize) {
  const GaloisField gf(10);
  for (std::uint32_t i : {1u, 3u, 5u}) {
    const std::uint64_t mp = gf.minimal_poly(i);
    int deg = 63;
    while (deg > 0 && !((mp >> deg) & 1u)) --deg;
    EXPECT_EQ(static_cast<std::size_t>(deg), gf.cyclotomic_coset(i).size());
  }
}

TEST(GaloisField, PrimitivePolyMatchesM10Reference) {
  // x^10 + x^3 + 1, the standard choice for GF(1024).
  const GaloisField gf(10);
  EXPECT_EQ(gf.primitive_poly(), 0b10000001001u);
  EXPECT_EQ(gf.size(), 1024u);
  EXPECT_EQ(gf.order(), 1023u);
}

}  // namespace
}  // namespace mecc::galois
