#include "galois/gfm_poly.h"

#include <gtest/gtest.h>

namespace mecc::galois {
namespace {

TEST(GfmPoly, DegreeTracksTrailingZeros) {
  GfmPoly p(std::vector<Elem>{1, 2, 0, 0});
  EXPECT_EQ(p.degree(), 1);
  GfmPoly z(std::vector<Elem>{0, 0});
  EXPECT_EQ(z.degree(), -1);
}

TEST(GfmPoly, EvalHorner) {
  const GaloisField gf(4);
  // p(x) = 3 x^2 + x + 5 evaluated at x = 2 (all in GF(16)).
  GfmPoly p(std::vector<Elem>{5, 1, 3});
  const Elem x = 2;
  const Elem expect = GaloisField::add(
      GaloisField::add(gf.mul(3, gf.mul(x, x)), x), 5);
  EXPECT_EQ(p.eval(gf, x), expect);
}

TEST(GfmPoly, EvalAtZeroIsConstantTerm) {
  const GaloisField gf(4);
  GfmPoly p(std::vector<Elem>{7, 9, 2});
  EXPECT_EQ(p.eval(gf, 0), 7u);
}

TEST(GfmPoly, AddIsCoefficientwise) {
  GfmPoly a(std::vector<Elem>{1, 2, 3});
  GfmPoly b(std::vector<Elem>{3, 2});
  const auto s = a.add(b);
  EXPECT_EQ(s.coeff(0), 2u);  // 1 ^ 3
  EXPECT_EQ(s.coeff(1), 0u);  // 2 ^ 2
  EXPECT_EQ(s.coeff(2), 3u);
  EXPECT_EQ(s.degree(), 2);
}

TEST(GfmPoly, MulDegreesAdd) {
  const GaloisField gf(8);
  GfmPoly a(std::vector<Elem>{1, 1});      // x + 1
  GfmPoly b(std::vector<Elem>{1, 0, 1});   // x^2 + 1
  const auto p = a.mul(gf, b);
  EXPECT_EQ(p.degree(), 3);
  // (x+1)(x^2+1) = x^3 + x^2 + x + 1 over GF(2) coefficients.
  EXPECT_EQ(p.coeff(0), 1u);
  EXPECT_EQ(p.coeff(1), 1u);
  EXPECT_EQ(p.coeff(2), 1u);
  EXPECT_EQ(p.coeff(3), 1u);
}

TEST(GfmPoly, ScaleAndShift) {
  const GaloisField gf(8);
  GfmPoly p(std::vector<Elem>{1, 2});
  const auto s = p.scale(gf, 3);
  EXPECT_EQ(s.coeff(0), gf.mul(1, 3));
  EXPECT_EQ(s.coeff(1), gf.mul(2, 3));
  const auto sh = p.shift(2);
  EXPECT_EQ(sh.degree(), 3);
  EXPECT_EQ(sh.coeff(0), 0u);
  EXPECT_EQ(sh.coeff(2), 1u);
  EXPECT_EQ(sh.coeff(3), 2u);
}

TEST(GfmPoly, DerivativeChar2) {
  // d/dx (a x^3 + b x^2 + c x + d) = a x^2 + c  (even-power terms vanish).
  GfmPoly p(std::vector<Elem>{4, 3, 2, 1});
  const auto d = p.derivative();
  EXPECT_EQ(d.coeff(0), 3u);
  EXPECT_EQ(d.coeff(1), 0u);
  EXPECT_EQ(d.coeff(2), 1u);
  EXPECT_EQ(d.degree(), 2);
}

TEST(GfmPoly, RootEvaluation) {
  const GaloisField gf(6);
  // Build (x - r1)(x - r2) and verify both roots evaluate to zero.
  const Elem r1 = gf.alpha_pow(5);
  const Elem r2 = gf.alpha_pow(17);
  GfmPoly f1(std::vector<Elem>{r1, 1});
  GfmPoly f2(std::vector<Elem>{r2, 1});
  const auto prod = f1.mul(gf, f2);
  EXPECT_EQ(prod.eval(gf, r1), 0u);
  EXPECT_EQ(prod.eval(gf, r2), 0u);
  EXPECT_NE(prod.eval(gf, gf.alpha_pow(30)), 0u);
}

}  // namespace
}  // namespace mecc::galois
