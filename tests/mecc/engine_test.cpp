#include "mecc/engine.h"

#include <gtest/gtest.h>

namespace mecc::morph {
namespace {

EngineConfig small_config() {
  EngineConfig c;
  c.memory_lines = 16384;          // 1 MB toy memory
  c.memory_bytes = 16384 * 64;
  c.mdt_entries = 16;              // 64 KB regions
  return c;
}

TEST(Engine, FirstReadIsStrongThenWeak) {
  Engine e(small_config());
  const ReadDecision first = e.on_read(0x1000);
  EXPECT_EQ(first.decode_mode, LineMode::kStrong);
  EXPECT_TRUE(first.downgrade);
  const ReadDecision second = e.on_read(0x1000);
  EXPECT_EQ(second.decode_mode, LineMode::kWeak);
  EXPECT_FALSE(second.downgrade);
  EXPECT_EQ(e.stats().counter("downgrades"), 1u);
}

TEST(Engine, WritesDowngradeWithoutRead) {
  Engine e(small_config());
  e.on_write(0x2000);
  EXPECT_EQ(e.modes().mode_of(0x2000), LineMode::kWeak);
  // A later read needs only the weak decoder.
  EXPECT_EQ(e.on_read(0x2000).decode_mode, LineMode::kWeak);
}

TEST(Engine, DowngradeMarksMdt) {
  Engine e(small_config());
  (void)e.on_read(0);
  EXPECT_EQ(e.mdt().marked_regions(), 1u);
  (void)e.on_read(64);  // same region
  EXPECT_EQ(e.mdt().marked_regions(), 1u);
  (void)e.on_read(5 * 65536);  // different 64 KB region
  EXPECT_EQ(e.mdt().marked_regions(), 2u);
}

TEST(Engine, IdleEntryUpgradesOnlyMdtRegionsWithMdt) {
  Engine e(small_config());
  (void)e.on_read(0);
  (void)e.on_read(5 * 65536);
  const UpgradeReport r = e.enter_idle();
  // 2 regions of 64 KB = 2048 lines, not the whole 16384.
  EXPECT_EQ(r.lines_upgraded, 2048u);
  EXPECT_EQ(r.upgrade_cycles, 2048u * 40);
  EXPECT_TRUE(e.modes().all_strong());
  EXPECT_EQ(e.mdt().marked_regions(), 0u);  // table reset
}

TEST(Engine, IdleEntryWithoutMdtWalksWholeMemory) {
  EngineConfig c = small_config();
  c.use_mdt = false;
  Engine e(c);
  (void)e.on_read(0);
  const UpgradeReport r = e.enter_idle();
  EXPECT_EQ(r.lines_upgraded, c.memory_lines);
}

TEST(Engine, PaperUpgradeLatencies) {
  // S VI-A: full 1 GB walk = 400 ms; with MDT and the average 128 MB
  // footprint it drops to ~50 ms.
  EngineConfig c;  // full-size memory
  c.use_mdt = false;
  Engine full(c);
  (void)full.on_read(0);
  EXPECT_NEAR(full.enter_idle().upgrade_seconds, 0.400, 0.02);

  EngineConfig cm;  // with MDT
  Engine with_mdt(cm);
  for (std::uint64_t r = 0; r < 128; ++r) {
    (void)with_mdt.on_read(r << 20);  // touch 128 x 1 MB regions
  }
  EXPECT_NEAR(with_mdt.enter_idle().upgrade_seconds, 0.050, 0.003);
}

TEST(Engine, AfterIdleLinesAreStrongAgain) {
  Engine e(small_config());
  (void)e.on_read(0x3000);
  ASSERT_EQ(e.modes().mode_of(0x3000), LineMode::kWeak);
  (void)e.enter_idle();
  const ReadDecision d = e.on_read(0x3000);
  EXPECT_EQ(d.decode_mode, LineMode::kStrong);  // pays ECC-6 once more
  EXPECT_TRUE(d.downgrade);
}

TEST(Engine, SmdHoldsOffDowngrade) {
  EngineConfig c = small_config();
  c.use_smd = true;
  c.smd_quantum_cycles = 1000;
  c.smd_mpkc_threshold = 2.0;
  Engine e(c);
  e.wake(0);
  EXPECT_FALSE(e.downgrade_enabled());
  EXPECT_EQ(e.active_refresh_divider(), 16u);  // still at the 1 s rate
  // Reads decode strong but do NOT downgrade.
  const ReadDecision d = e.on_read(0x100);
  EXPECT_EQ(d.decode_mode, LineMode::kStrong);
  EXPECT_FALSE(d.downgrade);
  EXPECT_TRUE(e.modes().all_strong());
}

TEST(Engine, SmdWritesKeepStrongEncoding) {
  EngineConfig c = small_config();
  c.use_smd = true;
  Engine e(c);
  e.wake(0);
  e.on_write(0x200);
  EXPECT_EQ(e.modes().mode_of(0x200), LineMode::kStrong);
}

TEST(Engine, SmdEnablesUnderHeavyTraffic) {
  EngineConfig c = small_config();
  c.use_smd = true;
  c.smd_quantum_cycles = 1000;
  c.smd_mpkc_threshold = 2.0;
  Engine e(c);
  e.wake(0);
  // 10 accesses per kilo-cycle for three quanta.
  for (Cycle cyc = 1; cyc <= 3000; ++cyc) {
    if (cyc % 100 == 0) (void)e.on_read(cyc * 64);
    e.tick(cyc);
  }
  EXPECT_TRUE(e.downgrade_enabled());
  EXPECT_EQ(e.active_refresh_divider(), 1u);  // back to 64 ms refresh
}

TEST(Engine, WithoutSmdDowngradeAlwaysOn) {
  Engine e(small_config());
  EXPECT_TRUE(e.downgrade_enabled());
  EXPECT_EQ(e.active_refresh_divider(), 1u);
}

TEST(Engine, StatsAccumulate) {
  Engine e(small_config());
  (void)e.on_read(0);
  (void)e.on_read(64);
  e.on_write(128);
  (void)e.enter_idle();
  e.wake(10);
  EXPECT_EQ(e.stats().counter("downgrades"), 2u);
  EXPECT_EQ(e.stats().counter("downgrades_on_write"), 1u);
  EXPECT_EQ(e.stats().counter("idle_entries"), 1u);
  EXPECT_EQ(e.stats().counter("wakeups"), 1u);
}

}  // namespace
}  // namespace mecc::morph
