#include "mecc/line_codec.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "reliability/fault_injection.h"

namespace mecc::morph {
namespace {

BitVec random_line(Rng& rng) {
  BitVec d(kDataBits);
  for (std::size_t i = 0; i < kDataBits; ++i) d.set(i, rng.chance(0.5));
  return d;
}

class LineCodecTest : public ::testing::Test {
 protected:
  LineCodec codec_;
  Rng rng_{17};
};

TEST_F(LineCodecTest, StoredWordIs576Bits) {
  // Paper S III-D: the standard (72,64) provisioning gives exactly 64
  // spare bits per 64 B line - no extra storage.
  const BitVec d = random_line(rng_);
  EXPECT_EQ(codec_.store(d, LineMode::kWeak).size(), 576u);
  EXPECT_EQ(codec_.store(d, LineMode::kStrong).size(), 576u);
}

TEST_F(LineCodecTest, CodeBudgetsMatchFig6) {
  EXPECT_EQ(codec_.weak_code().parity_bits(), 11u);    // SECDED on 64 B
  EXPECT_EQ(codec_.strong_code().parity_bits(), 60u);  // ECC-6 on 64 B
  // 4 mode bits + 60 code bits = the 64 spare bits.
  EXPECT_EQ(kModeReplicas + codec_.strong_code().parity_bits(), kSpareBits);
}

TEST_F(LineCodecTest, CleanRoundTripBothModes) {
  for (const LineMode mode : {LineMode::kWeak, LineMode::kStrong}) {
    const BitVec d = random_line(rng_);
    const LineDecodeResult r = codec_.load(codec_.store(d, mode));
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.mode, mode);
    EXPECT_FALSE(r.mode_bits_disagreed);
    EXPECT_EQ(r.corrected_bits, 0u);
    EXPECT_EQ(r.data, d);
  }
}

TEST_F(LineCodecTest, WeakModeCorrectsSingleDataError) {
  const BitVec d = random_line(rng_);
  BitVec stored = codec_.store(d, LineMode::kWeak);
  stored.flip(100);
  const LineDecodeResult r = codec_.load(stored);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.mode, LineMode::kWeak);
  EXPECT_EQ(r.corrected_bits, 1u);
  EXPECT_EQ(r.data, d);
}

TEST_F(LineCodecTest, StrongModeCorrectsSixErrors) {
  const BitVec d = random_line(rng_);
  BitVec stored = codec_.store(d, LineMode::kStrong);
  // Five data-bit flips plus one parity-bit flip.
  for (std::size_t pos : {3u, 77u, 200u, 311u, 500u, 520u}) {
    stored.flip(pos == 520u ? 516u + 10u : pos);  // one in code space
  }
  const LineDecodeResult r = codec_.load(stored);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.mode, LineMode::kStrong);
  EXPECT_EQ(r.corrected_bits, 6u);
  EXPECT_EQ(r.data, d);
}

TEST_F(LineCodecTest, SingleModeBitFlipStillIdentifiesMode) {
  // One flipped replica: majority would say the right thing, and the
  // trial-decode fallback must also land on the correct decoder.
  for (const LineMode mode : {LineMode::kWeak, LineMode::kStrong}) {
    const BitVec d = random_line(rng_);
    BitVec stored = codec_.store(d, mode);
    stored.flip(kDataBits + 2);  // one of the four mode replicas
    const LineDecodeResult r = codec_.load(stored);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.mode, mode);
    EXPECT_TRUE(r.mode_bits_disagreed);
    EXPECT_EQ(r.data, d);
  }
}

TEST_F(LineCodecTest, TwoModeBitFlipsResolvedByTrialDecode) {
  // 2-2 split: majority is useless; only trial decoding disambiguates
  // (paper S III-D: "we try both SECDED and ECC-6 decoder").
  const BitVec d = random_line(rng_);
  BitVec stored = codec_.store(d, LineMode::kStrong);
  stored.flip(kDataBits + 0);
  stored.flip(kDataBits + 1);
  const LineDecodeResult r = codec_.load(stored);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.mode, LineMode::kStrong);
  EXPECT_EQ(r.data, d);
}

TEST_F(LineCodecTest, ModeBitFlipPlusDataErrorsStillRecovers) {
  const BitVec d = random_line(rng_);
  BitVec stored = codec_.store(d, LineMode::kStrong);
  stored.flip(kDataBits + 1);  // mode replica
  stored.flip(10);
  stored.flip(400);            // two data errors
  const LineDecodeResult r = codec_.load(stored);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.mode, LineMode::kStrong);
  EXPECT_EQ(r.data, d);
}

TEST_F(LineCodecTest, WeakModeDetectsDoubleErrorWithoutMiscorrecting) {
  const BitVec d = random_line(rng_);
  BitVec stored = codec_.store(d, LineMode::kWeak);
  stored.flip(5);
  stored.flip(6);
  const LineDecodeResult r = codec_.load(stored);
  EXPECT_FALSE(r.ok);  // SEC-DED flags, does not corrupt
}

TEST_F(LineCodecTest, SurvivesIdleModeBerOnStrongLines) {
  // End-to-end idle-period experiment: store strong, inject the paper's
  // 1 s raw BER (1e-4.5) over the full 576-bit word, decode. With
  // E[errors] ~ 0.018 per line, thousands of lines decode without loss.
  reliability::FaultInjector fi(23);
  LineCodec codec;
  int failures = 0;
  for (int i = 0; i < 2000; ++i) {
    const BitVec d = random_line(rng_);
    BitVec stored = codec.store(d, LineMode::kStrong);
    (void)fi.inject(stored, 3.16e-5);
    const LineDecodeResult r = codec.load(stored);
    if (!r.ok || r.data != d) ++failures;
  }
  EXPECT_EQ(failures, 0);
}

}  // namespace
}  // namespace mecc::morph
