#include "mecc/mdt.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mecc::morph {
namespace {

TEST(Mdt, PaperConfiguration) {
  // S VI-A: 1 K entries over 1 GB -> 1 MB regions, 128 bytes of storage.
  Mdt mdt(kMemoryBytes, 1024);
  EXPECT_EQ(mdt.num_entries(), 1024u);
  EXPECT_EQ(mdt.region_bytes(), 1u << 20);
  EXPECT_EQ(mdt.storage_bytes(), 128u);
}

TEST(Mdt, StartsEmpty) {
  Mdt mdt(kMemoryBytes);
  EXPECT_EQ(mdt.marked_regions(), 0u);
  EXPECT_EQ(mdt.lines_to_upgrade(), 0u);
  EXPECT_FALSE(mdt.is_marked(0));
}

TEST(Mdt, MarkCoversWholeRegion) {
  Mdt mdt(kMemoryBytes, 1024);
  mdt.mark(5 * (1 << 20) + 777);  // somewhere inside region 5
  EXPECT_TRUE(mdt.is_marked(5 * (1 << 20)));
  EXPECT_TRUE(mdt.is_marked(6 * (1 << 20) - 1));
  EXPECT_FALSE(mdt.is_marked(6 * (1 << 20)));
  EXPECT_EQ(mdt.marked_regions(), 1u);
  EXPECT_EQ(mdt.lines_to_upgrade(), (1u << 20) / 64);
}

TEST(Mdt, DuplicateMarksIdempotent) {
  Mdt mdt(kMemoryBytes, 1024);
  for (int i = 0; i < 100; ++i) mdt.mark(1000 + i);
  EXPECT_EQ(mdt.marked_regions(), 1u);
}

TEST(Mdt, TracksDistinctRegions) {
  Mdt mdt(kMemoryBytes, 1024);
  for (std::uint64_t r = 0; r < 128; ++r) mdt.mark(r << 20);
  EXPECT_EQ(mdt.marked_regions(), 128u);
  EXPECT_EQ(mdt.tracked_bytes(), 128ull << 20);  // the Fig. 11 average
}

TEST(Mdt, ResetAfterUpgrade) {
  Mdt mdt(kMemoryBytes, 1024);
  mdt.mark(42 << 20);
  mdt.reset();
  EXPECT_EQ(mdt.marked_regions(), 0u);
  EXPECT_FALSE(mdt.is_marked(42 << 20));
}

TEST(Mdt, EightXReductionForTypicalFootprint) {
  // S VI-A: average footprint 128 MB is 8x smaller than the 1 GB memory,
  // so MDT cuts the upgrade work ~8x versus a full-memory walk.
  Mdt mdt(kMemoryBytes, 1024);
  Rng rng(3);
  const std::uint64_t footprint = 128ull << 20;
  for (int i = 0; i < 200000; ++i) {
    mdt.mark(rng.next_below(footprint));
  }
  const double reduction = static_cast<double>(kMemoryLines) /
                           static_cast<double>(mdt.lines_to_upgrade());
  EXPECT_NEAR(reduction, 8.0, 0.1);
}

TEST(Mdt, CoarserTableOverestimatesMore) {
  // Ablation: fewer entries -> bigger regions -> more lines upgraded for
  // the same sparse access pattern.
  Mdt fine(kMemoryBytes, 4096);
  Mdt coarse(kMemoryBytes, 64);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const Address a = rng.next_below(kMemoryBytes);
    fine.mark(a);
    coarse.mark(a);
  }
  EXPECT_LE(fine.lines_to_upgrade(), coarse.lines_to_upgrade());
}

TEST(Mdt, AddressesWrapModuloMemory) {
  Mdt mdt(kMemoryBytes, 1024);
  mdt.mark(kMemoryBytes + 5);  // wraps to region 0
  EXPECT_TRUE(mdt.is_marked(5));
}

}  // namespace
}  // namespace mecc::morph
