#include "mecc/memory_image.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "reliability/retention_model.h"

namespace mecc::morph {
namespace {

BitVec random_line(Rng& rng) {
  BitVec d(kDataBits);
  for (std::size_t i = 0; i < kDataBits; ++i) d.set(i, rng.chance(0.5));
  return d;
}

TEST(MemoryImage, FreshImageReadsZeroStrong) {
  MemoryImage img(16);
  for (std::size_t i = 0; i < img.num_lines(); ++i) {
    EXPECT_EQ(img.stored_mode(i), LineMode::kStrong);
    const auto data = img.read_line(i, /*downgrade=*/false);
    ASSERT_TRUE(data.has_value());
    EXPECT_FALSE(data->any());
  }
}

TEST(MemoryImage, WriteReadRoundTripBothModes) {
  MemoryImage img(4);
  Rng rng(1);
  const BitVec a = random_line(rng);
  const BitVec b = random_line(rng);
  img.write_line(0, a, LineMode::kWeak);
  img.write_line(1, b, LineMode::kStrong);
  EXPECT_EQ(img.stored_mode(0), LineMode::kWeak);
  EXPECT_EQ(img.stored_mode(1), LineMode::kStrong);
  EXPECT_EQ(*img.read_line(0, false), a);
  EXPECT_EQ(*img.read_line(1, false), b);
}

TEST(MemoryImage, DowngradeOnReadChangesStoredMode) {
  MemoryImage img(2);
  Rng rng(2);
  const BitVec a = random_line(rng);
  img.write_line(0, a, LineMode::kStrong);
  EXPECT_EQ(*img.read_line(0, /*downgrade=*/true), a);
  EXPECT_EQ(img.stored_mode(0), LineMode::kWeak);
  EXPECT_EQ(img.stats().downgrades, 1u);
  // Second read finds it weak; data still intact.
  EXPECT_EQ(*img.read_line(0, true), a);
  EXPECT_EQ(img.stats().downgrades, 1u);
}

TEST(MemoryImage, UpgradeAllRestoresStrong) {
  MemoryImage img(8);
  Rng rng(3);
  std::vector<BitVec> data;
  for (std::size_t i = 0; i < 8; ++i) {
    data.push_back(random_line(rng));
    img.write_line(i, data.back(), LineMode::kWeak);
  }
  img.upgrade_all();
  EXPECT_EQ(img.stats().upgrades, 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(img.stored_mode(i), LineMode::kStrong);
    EXPECT_EQ(*img.read_line(i, false), data[i]);
  }
}

TEST(MemoryImage, FullIdleCycleAtPaperBerPreservesAllData) {
  // The paper's core reliability claim, end to end at the bit level:
  // upgrade everything to ECC-6, sleep with 1 s refresh at BER 10^-4.5,
  // wake and read everything back with demand downgrade - no data loss.
  const std::size_t kLines = 3000;
  MemoryImage img(kLines);
  Rng rng(4);
  std::vector<BitVec> data;
  for (std::size_t i = 0; i < kLines; ++i) {
    data.push_back(random_line(rng));
    img.write_line(i, data[i], LineMode::kWeak);  // active-period state
  }
  img.upgrade_all();  // idle entry

  reliability::FaultInjector injector(5);
  const std::uint64_t flipped = img.inject_retention_errors(
      reliability::RetentionModel::kDefaultBerAt1s, injector);
  EXPECT_GT(flipped, 20u);  // E ~ 55 flips over 3000 * 576 bits

  // Wake: read everything back with downgrade (the active-mode path).
  for (std::size_t i = 0; i < kLines; ++i) {
    const auto out = img.read_line(i, /*downgrade=*/true);
    ASSERT_TRUE(out.has_value()) << "line " << i << " lost";
    EXPECT_EQ(*out, data[i]) << "line " << i << " corrupted";
  }
  EXPECT_EQ(img.stats().uncorrectable, 0u);
  // Flips inside the four mode-replica bits are repaired by the
  // trial-decode scrub rather than a code correction, so account for
  // them separately.
  EXPECT_GE(img.stats().corrected_bits + 4 * img.stats().mode_bit_repairs,
            flipped);
}

TEST(MemoryImage, WeakLinesLoseDataAtIdleBerButStrongDoNot) {
  // Why upgrading before sleep matters: leave lines weak through an
  // aggressive (100x) idle period and SEC-DED starts losing lines, while
  // the upgraded image survives.
  const std::size_t kLines = 500;
  const double kBer = 100 * reliability::RetentionModel::kDefaultBerAt1s;
  Rng rng(6);

  MemoryImage weak_img(kLines);
  MemoryImage strong_img(kLines);
  for (std::size_t i = 0; i < kLines; ++i) {
    const BitVec d = random_line(rng);
    weak_img.write_line(i, d, LineMode::kWeak);
    strong_img.write_line(i, d, LineMode::kStrong);
  }
  reliability::FaultInjector fi(7);
  (void)weak_img.inject_retention_errors(kBer, fi);
  (void)strong_img.inject_retention_errors(kBer, fi);

  std::size_t weak_losses = 0;
  std::size_t strong_losses = 0;
  for (std::size_t i = 0; i < kLines; ++i) {
    if (!weak_img.read_line(i, false).has_value()) ++weak_losses;
    if (!strong_img.read_line(i, false).has_value()) ++strong_losses;
  }
  // E[errors/line] ~ 1.8; SEC-DED fails on >= 2 (P ~ 0.53): many losses.
  EXPECT_GT(weak_losses, 100u);
  // ECC-6 fails only on >= 7 (P ~ 1e-3): almost none.
  EXPECT_LT(strong_losses, 10u);
}

TEST(MemoryImage, ScrubOnReadClearsAccumulatedErrors) {
  MemoryImage img(1);
  Rng rng(8);
  const BitVec d = random_line(rng);
  img.write_line(0, d, LineMode::kStrong);
  reliability::FaultInjector fi(9);
  (void)img.inject_retention_errors(3e-3, fi);  // E ~ 1.7 flips
  const auto first = img.read_line(0, false);
  ASSERT_TRUE(first.has_value());
  // After the scrub, a second read needs no correction.
  (void)img.read_line(0, false);
  const auto before = img.stats().corrected_bits;
  (void)img.read_line(0, false);
  EXPECT_EQ(img.stats().corrected_bits, before);
}

TEST(MemoryImage, ModeReplicaFlipsRepairedByTrialDecode) {
  // Flipping 1..3 of the 4 replicated mode bits leaves the replicas in
  // disagreement; trial decoding recovers the data and the read-scrub
  // rewrites the line with clean replicas.
  Rng rng(11);
  for (std::size_t flips = 1; flips <= 3; ++flips) {
    for (const LineMode mode : {LineMode::kWeak, LineMode::kStrong}) {
      MemoryImage img(1);
      const BitVec d = random_line(rng);
      img.write_line(0, d, mode);
      for (std::size_t r = 0; r < flips; ++r) {
        img.flip_stored_bit(0, kDataBits + r);
      }
      const auto out = img.read_line(0, /*downgrade=*/false);
      ASSERT_TRUE(out.has_value()) << "flips=" << flips;
      EXPECT_EQ(*out, d);
      EXPECT_EQ(img.stats().mode_bit_repairs, 1u);
      EXPECT_EQ(img.stats().uncorrectable, 0u);
      // The scrub restored unanimous replicas: a second read needs no
      // trial decode.
      EXPECT_EQ(img.stored_mode(0), mode);
      (void)img.read_line(0, false);
      EXPECT_EQ(img.stats().mode_bit_repairs, 1u);
    }
  }
}

TEST(MemoryImage, AllFourModeReplicasFlippedOnWeakLineIsUncorrectable) {
  // All four replicas flipping in the same idle period makes a weak line
  // claim unanimously to be strong; the BCH decoder then runs over
  // SEC-DED check bits and (with overwhelming probability) reports the
  // line uncorrectable — the replication limit the paper accepts.
  MemoryImage img(1);
  Rng rng(12);
  const BitVec d = random_line(rng);
  img.write_line(0, d, LineMode::kWeak);
  for (std::size_t r = 0; r < kModeReplicas; ++r) {
    img.flip_stored_bit(0, kDataBits + r);
  }
  EXPECT_EQ(img.stored_mode(0), LineMode::kStrong);  // unanimous lie
  EXPECT_FALSE(img.read_line(0, false).has_value());
  EXPECT_EQ(img.stats().uncorrectable, 1u);
  // Uncorrectable lines are left untouched, so the DUE repeats.
  EXPECT_FALSE(img.read_line(0, false).has_value());
  EXPECT_EQ(img.stats().uncorrectable, 2u);
}

TEST(MemoryImage, ScrubAllRepairsAndReportsUncorrectable) {
  MemoryImage img(4);
  Rng rng(13);
  std::vector<BitVec> data;
  for (std::size_t i = 0; i < 4; ++i) {
    data.push_back(random_line(rng));
    img.write_line(i, data[i], LineMode::kStrong);
  }
  img.flip_stored_bit(1, 100);               // correctable data flip
  img.flip_stored_bit(2, kDataBits);         // mode-replica flip
  for (std::size_t b = 0; b < 8; ++b) {      // beyond t=6: uncorrectable
    img.flip_stored_bit(3, 50 + 7 * b);
  }
  const ScrubReport rep = img.scrub_all();
  EXPECT_EQ(rep.lines, 4u);
  EXPECT_EQ(rep.repaired_lines, 2u);
  EXPECT_EQ(rep.corrected_bits, 1u);
  EXPECT_EQ(rep.uncorrectable, 1u);
  // A second pass finds the repaired lines clean.
  const ScrubReport again = img.scrub_all();
  EXPECT_EQ(again.repaired_lines, 0u);
  EXPECT_EQ(again.uncorrectable, 1u);
  EXPECT_EQ(*img.read_line(0, false), data[0]);
  EXPECT_EQ(*img.read_line(1, false), data[1]);
  EXPECT_EQ(*img.read_line(2, false), data[2]);
}

TEST(MemoryImage, StatsCount) {
  MemoryImage img(2);
  Rng rng(10);
  img.write_line(0, random_line(rng), LineMode::kStrong);
  (void)img.read_line(0, true);
  img.upgrade_all();
  EXPECT_EQ(img.stats().writes, 1u);
  EXPECT_EQ(img.stats().reads, 1u);
  EXPECT_EQ(img.stats().downgrades, 1u);
  EXPECT_EQ(img.stats().upgrades, 1u);
}

}  // namespace
}  // namespace mecc::morph
