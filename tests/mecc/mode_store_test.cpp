#include "mecc/mode_store.h"

#include <gtest/gtest.h>

namespace mecc::morph {
namespace {

TEST(ModeStore, StartsAllStrongAfterIdle) {
  ModeStore s(1000);
  EXPECT_TRUE(s.all_strong());
  EXPECT_EQ(s.weak_lines(), 0u);
  EXPECT_EQ(s.mode_of(0), LineMode::kStrong);
  EXPECT_EQ(s.mode_of(999 * 64), LineMode::kStrong);
}

TEST(ModeStore, DowngradeAndUpgradeSingleLine) {
  ModeStore s(1000);
  s.set_mode(64 * 5, LineMode::kWeak);
  EXPECT_EQ(s.mode_of(64 * 5), LineMode::kWeak);
  EXPECT_EQ(s.mode_of(64 * 6), LineMode::kStrong);
  EXPECT_EQ(s.weak_lines(), 1u);
  s.set_mode(64 * 5, LineMode::kStrong);
  EXPECT_EQ(s.weak_lines(), 0u);
}

TEST(ModeStore, RedundantSetsDoNotDoubleCount) {
  ModeStore s(100);
  s.set_mode(0, LineMode::kWeak);
  s.set_mode(0, LineMode::kWeak);
  EXPECT_EQ(s.weak_lines(), 1u);
  s.set_mode(0, LineMode::kStrong);
  s.set_mode(0, LineMode::kStrong);
  EXPECT_EQ(s.weak_lines(), 0u);
}

TEST(ModeStore, SetAllFlipsEverything) {
  ModeStore s(130);  // not a multiple of 64: exercises the tail word
  s.set_all(LineMode::kWeak);
  EXPECT_EQ(s.weak_lines(), 130u);
  for (std::uint64_t i = 0; i < 130; ++i) {
    EXPECT_EQ(s.mode_of(i * 64), LineMode::kWeak);
  }
  s.set_all(LineMode::kStrong);
  EXPECT_TRUE(s.all_strong());
}

TEST(ModeStore, SubLineAddressesShareALine) {
  ModeStore s(100);
  s.set_mode(64 * 3 + 17, LineMode::kWeak);
  EXPECT_EQ(s.mode_of(64 * 3), LineMode::kWeak);
  EXPECT_EQ(s.mode_of(64 * 3 + 63), LineMode::kWeak);
}

TEST(ModeStore, InitialWeakConstruction) {
  ModeStore s(50, LineMode::kWeak);
  EXPECT_EQ(s.weak_lines(), 50u);
}

TEST(ModeStore, FullMemoryScale) {
  // The real configuration: 16 M lines in 1 GB - must construct fast and
  // count correctly.
  ModeStore s(kMemoryLines);
  EXPECT_EQ(s.num_lines(), 16u * 1024 * 1024);
  s.set_mode(kMemoryBytes - 64, LineMode::kWeak);
  EXPECT_EQ(s.weak_lines(), 1u);
  s.set_all(LineMode::kStrong);
  EXPECT_TRUE(s.all_strong());
}

}  // namespace
}  // namespace mecc::morph
