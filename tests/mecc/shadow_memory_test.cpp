#include "mecc/shadow_memory.h"

#include <gtest/gtest.h>

namespace mecc::morph {
namespace {

TEST(ShadowMemory, CleanRoundTripClassifiesAsClean) {
  ShadowConfig cfg;
  cfg.capacity_lines = 8;
  ShadowMemory shadow(cfg);
  shadow.on_write(3, LineMode::kStrong);
  const ShadowReadOutcome o = shadow.on_read(3, /*downgrade=*/false);
  EXPECT_TRUE(o.shadowed);
  EXPECT_FALSE(o.due);
  EXPECT_FALSE(o.silent_corruption);
  EXPECT_EQ(o.corrected_bits, 0u);
  EXPECT_FALSE(o.mode_repaired);
  EXPECT_EQ(shadow.tracked_lines(), 1u);
}

TEST(ShadowMemory, StrideSamplingSkipsUnsampledAddresses) {
  ShadowConfig cfg;
  cfg.capacity_lines = 8;
  cfg.sample_stride = 4;
  ShadowMemory shadow(cfg);
  shadow.on_write(4, LineMode::kWeak);
  shadow.on_write(5, LineMode::kWeak);  // 5 % 4 != 0: passes through
  EXPECT_TRUE(shadow.sampled(4));
  EXPECT_FALSE(shadow.sampled(5));
  EXPECT_EQ(shadow.tracked_lines(), 1u);
  EXPECT_TRUE(shadow.on_read(4, false).shadowed);
  EXPECT_FALSE(shadow.on_read(5, false).shadowed);
}

TEST(ShadowMemory, CapacityExhaustionPassesThrough) {
  ShadowConfig cfg;
  cfg.capacity_lines = 2;
  ShadowMemory shadow(cfg);
  shadow.on_write(10, LineMode::kWeak);
  shadow.on_write(20, LineMode::kWeak);
  shadow.on_write(30, LineMode::kWeak);  // no slot left
  EXPECT_EQ(shadow.tracked_lines(), 2u);
  EXPECT_TRUE(shadow.on_read(10, false).shadowed);
  EXPECT_FALSE(shadow.on_read(30, false).shadowed);
  // Rewriting an already-tracked address reuses its slot.
  shadow.on_write(10, LineMode::kStrong);
  EXPECT_EQ(shadow.tracked_lines(), 2u);
}

TEST(ShadowMemory, ExpectedDataIsDeterministicPerAddressAndSeed) {
  ShadowConfig cfg;
  ShadowMemory a(cfg);
  ShadowMemory b(cfg);
  EXPECT_EQ(a.expected_data(7), b.expected_data(7));
  EXPECT_NE(a.expected_data(7), a.expected_data(8));
  ShadowConfig other = cfg;
  other.seed = 2;
  ShadowMemory c(other);
  EXPECT_NE(a.expected_data(7), c.expected_data(7));
}

TEST(ShadowMemory, RetentionErrorsSurfaceAsCeOnStrongLines) {
  ShadowConfig cfg;
  cfg.capacity_lines = 16;
  ShadowMemory shadow(cfg);
  for (Address a = 0; a < 16; ++a) shadow.on_write(a, LineMode::kStrong);
  // E ~ 18 flips over 16 * 576 bits: CE work, no strong-line losses.
  const std::uint64_t flipped = shadow.inject_retention_errors(2e-3);
  EXPECT_GT(flipped, 0u);
  std::size_t corrected = 0;
  for (Address a = 0; a < 16; ++a) {
    const ShadowReadOutcome o = shadow.on_read(a, false);
    EXPECT_FALSE(o.due);
    EXPECT_FALSE(o.silent_corruption);
    corrected += o.corrected_bits;
  }
  EXPECT_GT(corrected, 0u);
  StatSet s;
  shadow.export_stats(s);
  EXPECT_EQ(s.counter("injections"), 1u);
  EXPECT_GT(s.counter("ce"), 0u);
  EXPECT_EQ(s.counter("ce_bits"), corrected);
  EXPECT_EQ(s.counter("due"), 0u);
}

TEST(ShadowMemory, ScrubClearsAccumulatedErrors) {
  ShadowConfig cfg;
  cfg.capacity_lines = 16;
  ShadowMemory shadow(cfg);
  for (Address a = 0; a < 16; ++a) shadow.on_write(a, LineMode::kStrong);
  (void)shadow.inject_retention_errors(2e-3);
  const ScrubReport rep = shadow.scrub();
  EXPECT_GT(rep.repaired_lines, 0u);
  EXPECT_EQ(rep.uncorrectable, 0u);
  // Everything was rewritten clean: reads need no further correction.
  for (Address a = 0; a < 16; ++a) {
    EXPECT_EQ(shadow.on_read(a, false).corrected_bits, 0u);
  }
}

TEST(ShadowMemory, ForceUpgradeReconstructsUncorrectableLines) {
  ShadowConfig cfg;
  cfg.capacity_lines = 32;
  ShadowMemory shadow(cfg);
  for (Address a = 0; a < 32; ++a) shadow.on_write(a, LineMode::kStrong);
  // E ~ 11.5 flips per line: far beyond even t=6, most lines are lost.
  // (Strong lines, because BCH detects what it cannot correct; weak
  // lines at this BER would also *miscorrect*, which no upgrade can
  // undo — that silent-corruption floor is the paper's SEC-DED limit.)
  (void)shadow.inject_retention_errors(2e-2);
  std::size_t dues = 0;
  std::vector<bool> silent_before(32, false);
  for (Address a = 0; a < 32; ++a) {
    const ShadowReadOutcome o = shadow.on_read(a, false);
    dues += o.due;
    // A mode-replica flip can force trial decoding, and SEC-DED may then
    // falsely "recover" the strong line — silent corruption no later
    // rung can see, so it is excluded from the recovery check below.
    silent_before[a] = o.silent_corruption;
  }
  ASSERT_GT(dues, 0u);

  const std::uint64_t restored = shadow.force_upgrade();
  EXPECT_GT(restored, 0u);
  // After the forced upgrade every line is strong and decodable, and no
  // line beyond the pre-existing silent corruptions reads back wrong.
  for (Address a = 0; a < 32; ++a) {
    const ShadowReadOutcome o = shadow.on_read(a, false);
    EXPECT_FALSE(o.due) << "line " << a;
    if (!silent_before[a]) {
      EXPECT_FALSE(o.silent_corruption) << "line " << a;
    }
  }
  EXPECT_EQ(shadow.image().stored_mode(0), LineMode::kStrong);
}

TEST(ShadowMemory, TransientNoiseNeverPersists) {
  // Heavy transient read noise produces a mix of DUEs and successes on
  // the same line, but never enters the array: after every read —
  // including ones the noise made fail or silently corrupt — the stored
  // word is still the clean encoding of the expected data, so the DUE
  // rate stays stationary and a retry genuinely can cure the fault.
  ShadowConfig cfg;
  cfg.capacity_lines = 4;
  cfg.transient_read_ber = 1.2e-2;  // E ~ 6.9 flips per 576-bit read
  ShadowMemory shadow(cfg);
  shadow.on_write(0, LineMode::kStrong);
  const LineCodec codec;
  const BitVec clean = codec.store(shadow.expected_data(0), LineMode::kStrong);
  std::size_t dues = 0;
  std::size_t successes = 0;
  for (int i = 0; i < 100; ++i) {
    const ShadowReadOutcome o = shadow.on_read(0, false);
    if (o.due) {
      ++dues;
      // The controller retry path: fresh noise, same stored word.
      if (!shadow.retry_read(0).due) ++successes;
    } else {
      ++successes;
    }
    EXPECT_EQ(shadow.image().stored_bits(0), clean) << "read " << i;
  }
  EXPECT_GT(dues, 0u);
  EXPECT_GT(successes, 0u);
  StatSet s;
  shadow.export_stats(s);
  EXPECT_GT(s.counter("transient_bits"), 0u);
}

}  // namespace
}  // namespace mecc::morph
