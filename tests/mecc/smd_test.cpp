#include "mecc/smd.h"

#include <gtest/gtest.h>

namespace mecc::morph {
namespace {

constexpr Cycle kQuantum = 10'000;

/// Runs `cycles` cycles with a constant access rate (accesses per kilo
/// cycle), ticking the SMD each cycle.
void run_with_mpkc(Smd& smd, Cycle start, Cycle cycles, double mpkc) {
  double acc = 0.0;
  for (Cycle c = start; c < start + cycles; ++c) {
    acc += mpkc / 1000.0;
    while (acc >= 1.0) {
      smd.record_access();
      acc -= 1.0;
    }
    smd.tick(c);
  }
}

TEST(Smd, StartsDisabled) {
  Smd smd(kQuantum, 2.0);
  EXPECT_FALSE(smd.downgrade_enabled());
}

TEST(Smd, LowTrafficNeverEnables) {
  Smd smd(kQuantum, 2.0);
  smd.reset(0);
  run_with_mpkc(smd, 0, 20 * kQuantum, /*mpkc=*/1.0);
  EXPECT_FALSE(smd.downgrade_enabled());
}

TEST(Smd, HighTrafficEnablesAfterOneQuantum) {
  Smd smd(kQuantum, 2.0);
  smd.reset(0);
  run_with_mpkc(smd, 0, 3 * kQuantum, /*mpkc=*/10.0);
  EXPECT_TRUE(smd.downgrade_enabled());
  // Enabled at the first check after a full quantum of traffic.
  EXPECT_LE(smd.enabled_at(), 2 * kQuantum + 1);
}

TEST(Smd, ThresholdIsExclusive) {
  // Exactly at the threshold does not enable (paper: "greater than").
  Smd smd(kQuantum, 2.0);
  smd.reset(0);
  run_with_mpkc(smd, 0, 10 * kQuantum, /*mpkc=*/2.0);
  EXPECT_FALSE(smd.downgrade_enabled());
  run_with_mpkc(smd, 10 * kQuantum, 10 * kQuantum, /*mpkc=*/2.5);
  EXPECT_TRUE(smd.downgrade_enabled());
}

TEST(Smd, StaysEnabledOnceTriggered) {
  Smd smd(kQuantum, 2.0);
  smd.reset(0);
  run_with_mpkc(smd, 0, 3 * kQuantum, 10.0);
  ASSERT_TRUE(smd.downgrade_enabled());
  run_with_mpkc(smd, 3 * kQuantum, 10 * kQuantum, 0.0);
  EXPECT_TRUE(smd.downgrade_enabled());  // one-way per active period
}

TEST(Smd, ResetRearmsOnWake) {
  Smd smd(kQuantum, 2.0);
  smd.reset(0);
  run_with_mpkc(smd, 0, 3 * kQuantum, 10.0);
  ASSERT_TRUE(smd.downgrade_enabled());
  smd.reset(100 * kQuantum);
  EXPECT_FALSE(smd.downgrade_enabled());
  // Low traffic after wake keeps it off.
  run_with_mpkc(smd, 100 * kQuantum, 5 * kQuantum, 0.5);
  EXPECT_FALSE(smd.downgrade_enabled());
}

TEST(Smd, PhaseChangeEnablesMidRun) {
  // A workload that idles for a while and then turns memory-intensive
  // flips the switch partway through (the partial bars in Fig. 14).
  Smd smd(kQuantum, 2.0);
  smd.reset(0);
  run_with_mpkc(smd, 0, 10 * kQuantum, 0.5);
  EXPECT_FALSE(smd.downgrade_enabled());
  run_with_mpkc(smd, 10 * kQuantum, 5 * kQuantum, 8.0);
  EXPECT_TRUE(smd.downgrade_enabled());
  EXPECT_GT(smd.enabled_at(), 10 * kQuantum);
}

TEST(Smd, ExposesConfig) {
  Smd smd(12345, 2.5);
  EXPECT_EQ(smd.quantum_cycles(), 12345u);
  EXPECT_DOUBLE_EQ(smd.threshold(), 2.5);
}

}  // namespace
}  // namespace mecc::morph
