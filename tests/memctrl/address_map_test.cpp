#include "memctrl/address_map.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

namespace mecc::memctrl {
namespace {

TEST(AddressMap, RoundTrip) {
  const dram::Geometry geo;
  const AddressMap map(geo);
  for (std::uint64_t line : {0ull, 1ull, 255ull, 256ull, 1023ull, 1024ull,
                             (1ull << 24) - 1}) {
    const Address addr = line * kLineBytes;
    const DramCoord c = map.decode(addr);
    EXPECT_EQ(map.encode(c), addr);
  }
}

TEST(AddressMap, SequentialLinesStayInRowThenRotateBanks) {
  const dram::Geometry geo;
  const AddressMap map(geo);
  // First lines_per_row lines share bank 0 / row 0.
  for (std::uint32_t i = 0; i < geo.lines_per_row; ++i) {
    const DramCoord c = map.decode(static_cast<Address>(i) * kLineBytes);
    EXPECT_EQ(c.bank, 0u);
    EXPECT_EQ(c.row, 0u);
    EXPECT_EQ(c.col, i);
  }
  // The next line moves to bank 1, same row index.
  const DramCoord c =
      map.decode(static_cast<Address>(geo.lines_per_row) * kLineBytes);
  EXPECT_EQ(c.bank, 1u);
  EXPECT_EQ(c.row, 0u);
  EXPECT_EQ(c.col, 0u);
}

TEST(AddressMap, CoversAllCoordinatesUniquely) {
  // On a tiny geometry every line maps to a unique (bank,row,col).
  dram::Geometry geo;
  geo.banks = 2;
  geo.rows_per_bank = 4;
  geo.lines_per_row = 8;
  const AddressMap map(geo);
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  for (std::uint64_t line = 0; line < geo.total_lines(); ++line) {
    const DramCoord c = map.decode(line * kLineBytes);
    EXPECT_LT(c.bank, geo.banks);
    EXPECT_LT(c.row, geo.rows_per_bank);
    EXPECT_LT(c.col, geo.lines_per_row);
    EXPECT_TRUE(seen.insert({c.bank, c.row, c.col}).second);
  }
  EXPECT_EQ(seen.size(), geo.total_lines());
}

TEST(AddressMap, WrapsBeyondCapacity) {
  const dram::Geometry geo;
  const AddressMap map(geo);
  const Address beyond = geo.capacity_bytes() + 128;
  const DramCoord a = map.decode(beyond);
  const DramCoord b = map.decode(128);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(a.col, b.col);
}

TEST(AddressMap, SubLineOffsetsShareALine) {
  const dram::Geometry geo;
  const AddressMap map(geo);
  const DramCoord a = map.decode(0x1000);
  const DramCoord b = map.decode(0x1000 + 63);
  EXPECT_EQ(a.col, b.col);
  EXPECT_EQ(a.row, b.row);
}

// ---- multi-channel / multi-rank (docs/SCALING.md) ----

constexpr Interleave kAllModes[] = {Interleave::kLine, Interleave::kRow,
                                    Interleave::kBankXor};

std::vector<dram::Geometry> small_geometries() {
  // Power-of-two geometries take the shift/mask fast path; the rest take
  // the generic divide path. Both must agree with encode().
  std::vector<dram::Geometry> geos;
  for (std::uint32_t channels : {1u, 2u, 4u, 3u}) {
    for (std::uint32_t ranks : {1u, 2u, 3u}) {
      dram::Geometry g;
      g.channels = channels;
      g.ranks = ranks;
      g.banks = 2;
      g.rows_per_bank = 4;
      g.lines_per_row = channels == 3 ? 6 : 8;
      geos.push_back(g);
    }
  }
  return geos;
}

TEST(AddressMap, ExhaustiveRoundTripAllModesAndGeometries) {
  for (const dram::Geometry& geo : small_geometries()) {
    for (const Interleave mode : kAllModes) {
      const AddressMap map(geo, mode);
      for (std::uint64_t line = 0; line < geo.total_lines(); ++line) {
        const Address addr = line * kLineBytes;
        const DramCoord c = map.decode(addr);
        ASSERT_LT(c.channel, geo.channels) << interleave_name(mode);
        ASSERT_LT(c.rank, geo.ranks) << interleave_name(mode);
        ASSERT_LT(c.bank, geo.banks) << interleave_name(mode);
        ASSERT_LT(c.row, geo.rows_per_bank) << interleave_name(mode);
        ASSERT_LT(c.col, geo.lines_per_row) << interleave_name(mode);
        ASSERT_EQ(map.encode(c), addr)
            << interleave_name(mode) << " ch=" << geo.channels
            << " rk=" << geo.ranks << " line=" << line;
      }
    }
  }
}

TEST(AddressMap, ExhaustiveCoverageIsBijective) {
  for (const dram::Geometry& geo : small_geometries()) {
    for (const Interleave mode : kAllModes) {
      const AddressMap map(geo, mode);
      std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                          std::uint32_t, std::uint32_t>>
          seen;
      for (std::uint64_t line = 0; line < geo.total_lines(); ++line) {
        const DramCoord c = map.decode(line * kLineBytes);
        ASSERT_TRUE(seen.insert({c.channel, c.rank, c.bank, c.row, c.col})
                        .second)
            << interleave_name(mode) << " line=" << line;
      }
      EXPECT_EQ(seen.size(), geo.total_lines());
    }
  }
}

TEST(AddressMap, LineInterleaveSpreadsSequentialStreamEvenly) {
  // A sequential stream must land on channels round-robin: after any
  // multiple of `channels` lines, every channel has served exactly the
  // same number of lines.
  for (std::uint32_t channels : {2u, 4u, 8u}) {
    dram::Geometry geo;
    geo.channels = channels;
    geo.ranks = 2;
    const AddressMap map(geo, Interleave::kLine);
    std::vector<std::uint64_t> per_channel(channels, 0);
    const std::uint64_t lines = 1024 * channels;
    for (std::uint64_t line = 0; line < lines; ++line) {
      ++per_channel[map.decode(line * kLineBytes).channel];
    }
    for (std::uint32_t ch = 0; ch < channels; ++ch) {
      EXPECT_EQ(per_channel[ch], lines / channels) << "ch=" << ch;
    }
  }
}

TEST(AddressMap, RowInterleaveKeepsARowOnOneChannel) {
  dram::Geometry geo;
  geo.channels = 4;
  geo.ranks = 2;
  const AddressMap map(geo, Interleave::kRow);
  for (std::uint64_t r = 0; r < 16; ++r) {
    const std::uint64_t base = r * geo.lines_per_row;
    const std::uint32_t ch = map.decode(base * kLineBytes).channel;
    for (std::uint32_t i = 1; i < geo.lines_per_row; ++i) {
      EXPECT_EQ(map.decode((base + i) * kLineBytes).channel, ch)
          << "row-block " << r;
    }
  }
}

TEST(AddressMap, BankXorBreaksChannelStrideResonance) {
  // With kLine, a stride of `channels` lines hammers one channel. The
  // bank-xor permutation must spread that stream across channels.
  dram::Geometry geo;
  geo.channels = 4;
  geo.ranks = 1;
  const AddressMap line_map(geo, Interleave::kLine);
  const AddressMap xor_map(geo, Interleave::kBankXor);
  std::set<std::uint32_t> line_channels;
  std::set<std::uint32_t> xor_channels;
  // Stride channels*lines_per_row: row changes every step, channel bits
  // constant under kLine.
  const std::uint64_t stride =
      static_cast<std::uint64_t>(geo.channels) * geo.lines_per_row *
      geo.banks;
  for (std::uint64_t i = 0; i < 16; ++i) {
    line_channels.insert(line_map.decode(i * stride * kLineBytes).channel);
    xor_channels.insert(xor_map.decode(i * stride * kLineBytes).channel);
  }
  EXPECT_EQ(line_channels.size(), 1u);
  EXPECT_GT(xor_channels.size(), 1u);
}

TEST(AddressMap, SingleChannelSingleRankMatchesLegacyLayout) {
  // The strict-generalization contract: at 1ch x 1rank every mode
  // reproduces the original col | bank | row map bit for bit.
  dram::Geometry geo;  // stock geometry is 1ch x 1rank
  const AddressMap legacy(geo);
  for (const Interleave mode : kAllModes) {
    const AddressMap map(geo, mode);
    for (std::uint64_t line : {0ull, 1ull, 255ull, 4096ull, 65535ull}) {
      const DramCoord a = legacy.decode(line * kLineBytes);
      const DramCoord b = map.decode(line * kLineBytes);
      EXPECT_EQ(a.channel, b.channel);
      EXPECT_EQ(a.rank, b.rank);
      EXPECT_EQ(a.bank, b.bank);
      EXPECT_EQ(a.row, b.row);
      EXPECT_EQ(a.col, b.col);
    }
  }
}

}  // namespace
}  // namespace mecc::memctrl
