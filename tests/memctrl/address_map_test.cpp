#include "memctrl/address_map.h"

#include <gtest/gtest.h>

#include <set>

namespace mecc::memctrl {
namespace {

TEST(AddressMap, RoundTrip) {
  const dram::Geometry geo;
  const AddressMap map(geo);
  for (std::uint64_t line : {0ull, 1ull, 255ull, 256ull, 1023ull, 1024ull,
                             (1ull << 24) - 1}) {
    const Address addr = line * kLineBytes;
    const DramCoord c = map.decode(addr);
    EXPECT_EQ(map.encode(c), addr);
  }
}

TEST(AddressMap, SequentialLinesStayInRowThenRotateBanks) {
  const dram::Geometry geo;
  const AddressMap map(geo);
  // First lines_per_row lines share bank 0 / row 0.
  for (std::uint32_t i = 0; i < geo.lines_per_row; ++i) {
    const DramCoord c = map.decode(static_cast<Address>(i) * kLineBytes);
    EXPECT_EQ(c.bank, 0u);
    EXPECT_EQ(c.row, 0u);
    EXPECT_EQ(c.col, i);
  }
  // The next line moves to bank 1, same row index.
  const DramCoord c =
      map.decode(static_cast<Address>(geo.lines_per_row) * kLineBytes);
  EXPECT_EQ(c.bank, 1u);
  EXPECT_EQ(c.row, 0u);
  EXPECT_EQ(c.col, 0u);
}

TEST(AddressMap, CoversAllCoordinatesUniquely) {
  // On a tiny geometry every line maps to a unique (bank,row,col).
  dram::Geometry geo;
  geo.banks = 2;
  geo.rows_per_bank = 4;
  geo.lines_per_row = 8;
  const AddressMap map(geo);
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  for (std::uint64_t line = 0; line < geo.total_lines(); ++line) {
    const DramCoord c = map.decode(line * kLineBytes);
    EXPECT_LT(c.bank, geo.banks);
    EXPECT_LT(c.row, geo.rows_per_bank);
    EXPECT_LT(c.col, geo.lines_per_row);
    EXPECT_TRUE(seen.insert({c.bank, c.row, c.col}).second);
  }
  EXPECT_EQ(seen.size(), geo.total_lines());
}

TEST(AddressMap, WrapsBeyondCapacity) {
  const dram::Geometry geo;
  const AddressMap map(geo);
  const Address beyond = geo.capacity_bytes() + 128;
  const DramCoord a = map.decode(beyond);
  const DramCoord b = map.decode(128);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(a.col, b.col);
}

TEST(AddressMap, SubLineOffsetsShareALine) {
  const dram::Geometry geo;
  const AddressMap map(geo);
  const DramCoord a = map.decode(0x1000);
  const DramCoord b = map.decode(0x1000 + 63);
  EXPECT_EQ(a.col, b.col);
  EXPECT_EQ(a.row, b.row);
}

}  // namespace
}  // namespace mecc::memctrl
