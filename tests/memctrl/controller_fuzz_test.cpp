// Fuzz / property test of the memory controller: random mixed traffic
// must never lose or duplicate a read, reads must complete in bounded
// time, and the controller must drain to idle.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "memctrl/controller.h"

namespace mecc::memctrl {
namespace {

class ControllerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ControllerFuzz, NoReadLostNoReadDuplicated) {
  const dram::Geometry geo;
  const dram::Timing timing;
  dram::Device dev(geo, timing);
  ControllerConfig cfg;
  Controller ctl(dev, cfg);
  Rng rng(GetParam());

  std::map<std::uint64_t, dram::MemCycle> outstanding;  // id -> enqueue time
  std::set<std::uint64_t> completed;
  std::uint64_t next_id = 1;
  std::uint64_t enqueued_reads = 0;
  std::uint64_t enqueued_writes = 0;

  const dram::MemCycle kTrafficCycles = 30'000;
  const dram::MemCycle kDrainCycles = 20'000;
  for (dram::MemCycle now = 0; now < kTrafficCycles + kDrainCycles; ++now) {
    // Bursty random traffic while in the traffic window.
    if (now < kTrafficCycles && rng.chance(0.15)) {
      const Address addr =
          rng.next_below(1 << 16) * kLineBytes;  // 4 MB hot region
      if (rng.chance(0.65)) {
        if (ctl.enqueue_read(addr, next_id, now)) {
          outstanding.emplace(next_id, now);
          ++next_id;
          ++enqueued_reads;
        }
      } else {
        if (ctl.enqueue_write(addr, now)) ++enqueued_writes;
      }
    }
    ctl.tick(now);
    for (const auto& c : ctl.collect_completions(now)) {
      // Exactly-once completion.
      ASSERT_TRUE(outstanding.count(c.id)) << "unknown/duplicate id";
      ASSERT_FALSE(completed.count(c.id)) << "duplicated completion";
      // Bounded latency: generous cap of 4000 memory cycles covers queue
      // backlog + refresh interference.
      EXPECT_LE(c.done - outstanding[c.id], 4000u);
      EXPECT_GE(c.done, outstanding[c.id]);
      completed.insert(c.id);
      outstanding.erase(c.id);
    }
  }

  EXPECT_GT(enqueued_reads, 500u);  // the fuzz actually exercised traffic
  EXPECT_GT(enqueued_writes, 200u);
  EXPECT_TRUE(outstanding.empty()) << outstanding.size() << " reads lost";
  EXPECT_EQ(completed.size(), enqueued_reads);
  EXPECT_TRUE(ctl.idle());
  // Refresh kept running under load.
  EXPECT_GT(ctl.stats().counter("refreshes"), 20u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(ControllerStress, SaturatingReadStreamDrains) {
  const dram::Geometry geo;
  const dram::Timing timing;
  dram::Device dev(geo, timing);
  ControllerConfig cfg;
  Controller ctl(dev, cfg);
  Rng rng(99);

  std::uint64_t enq = 0;
  std::uint64_t done = 0;
  std::uint64_t id = 1;
  for (dram::MemCycle now = 0; now < 100'000; ++now) {
    // Saturate: always try to enqueue.
    if (now < 80'000 &&
        ctl.enqueue_read(rng.next_below(1 << 20) * kLineBytes, id, now)) {
      ++id;
      ++enq;
    }
    ctl.tick(now);
    done += ctl.collect_completions(now).size();
  }
  EXPECT_EQ(done, enq);
  EXPECT_TRUE(ctl.idle());
  // Sustained random-access throughput: every read needs ACT+RD+PRE; the
  // device must stay well above 1 read per 100 cycles.
  EXPECT_GT(done, 2000u);
}

}  // namespace
}  // namespace mecc::memctrl
