// Fuzz / property test of the memory controller: random mixed traffic
// must never lose or duplicate a read, reads must complete in bounded
// time, and the controller must drain to idle. The per-bank fuzzes
// additionally pin the refresh invariants (docs/SCHEDULING.md): every
// bank keeps its retention-window coverage, postponement never exceeds
// max_postponed_refreshes, and refresh debt is conserved across
// refresh-divider moves and power-down entries/exits.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "dram/timing_checker.h"
#include "memctrl/controller.h"

namespace mecc::memctrl {
namespace {

class ControllerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ControllerFuzz, NoReadLostNoReadDuplicated) {
  const dram::Geometry geo;
  const dram::Timing timing;
  dram::Device dev(geo, timing);
  ControllerConfig cfg;
  Controller ctl(dev, cfg);
  Rng rng(GetParam());

  std::map<std::uint64_t, dram::MemCycle> outstanding;  // id -> enqueue time
  std::set<std::uint64_t> completed;
  std::uint64_t next_id = 1;
  std::uint64_t enqueued_reads = 0;
  std::uint64_t enqueued_writes = 0;

  const dram::MemCycle kTrafficCycles = 30'000;
  const dram::MemCycle kDrainCycles = 20'000;
  for (dram::MemCycle now = 0; now < kTrafficCycles + kDrainCycles; ++now) {
    // Bursty random traffic while in the traffic window.
    if (now < kTrafficCycles && rng.chance(0.15)) {
      const Address addr =
          rng.next_below(1 << 16) * kLineBytes;  // 4 MB hot region
      if (rng.chance(0.65)) {
        if (ctl.enqueue_read(addr, next_id, now)) {
          outstanding.emplace(next_id, now);
          ++next_id;
          ++enqueued_reads;
        }
      } else {
        if (ctl.enqueue_write(addr, now)) ++enqueued_writes;
      }
    }
    ctl.tick(now);
    for (const auto& c : ctl.collect_completions(now)) {
      // Exactly-once completion.
      ASSERT_TRUE(outstanding.count(c.id)) << "unknown/duplicate id";
      ASSERT_FALSE(completed.count(c.id)) << "duplicated completion";
      // Bounded latency: generous cap of 4000 memory cycles covers queue
      // backlog + refresh interference.
      EXPECT_LE(c.done - outstanding[c.id], 4000u);
      EXPECT_GE(c.done, outstanding[c.id]);
      completed.insert(c.id);
      outstanding.erase(c.id);
    }
  }

  EXPECT_GT(enqueued_reads, 500u);  // the fuzz actually exercised traffic
  EXPECT_GT(enqueued_writes, 200u);
  EXPECT_TRUE(outstanding.empty()) << outstanding.size() << " reads lost";
  EXPECT_EQ(completed.size(), enqueued_reads);
  EXPECT_TRUE(ctl.idle());
  // Refresh kept running under load.
  EXPECT_GT(ctl.stats().counter("refreshes"), 20u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(ControllerStress, SaturatingReadStreamDrains) {
  const dram::Geometry geo;
  const dram::Timing timing;
  dram::Device dev(geo, timing);
  ControllerConfig cfg;
  Controller ctl(dev, cfg);
  Rng rng(99);

  std::uint64_t enq = 0;
  std::uint64_t done = 0;
  std::uint64_t id = 1;
  for (dram::MemCycle now = 0; now < 100'000; ++now) {
    // Saturate: always try to enqueue.
    if (now < 80'000 &&
        ctl.enqueue_read(rng.next_below(1 << 20) * kLineBytes, id, now)) {
      ++id;
      ++enq;
    }
    ctl.tick(now);
    done += ctl.collect_completions(now).size();
  }
  EXPECT_EQ(done, enq);
  EXPECT_TRUE(ctl.idle());
  // Sustained random-access throughput: every read needs ACT+RD+PRE; the
  // device must stay well above 1 read per 100 cycles.
  EXPECT_GT(done, 2000u);
}

// Per-bank refresh fuzz: random mixed traffic with quiet stretches
// (power-down entries/exits) under each per-bank policy. Invariants,
// sampled every cycle:
//   * no bank's debt ever exceeds max_postponed_refreshes (the tREFW
//     guarantee: a bank is never more than the postpone budget behind
//     its schedule);
//   * the total debt is exactly the sum of the per-bank debts.
// And from the command log at the end: every bank received at least
// (elapsed/tREFI - budget - 1) REFpb commands — the per-bank coverage
// an all-bank REF per tREFI would have provided, minus the allowed
// postponement.
struct PerBankFuzzParam {
  const char* name;
  bool darp;
  bool sarp;
};

class PerBankRefreshFuzz : public ::testing::TestWithParam<PerBankFuzzParam> {
};

TEST_P(PerBankRefreshFuzz, CoverageAndDebtInvariantsHold) {
  const dram::Geometry geo;
  const dram::Timing timing;
  dram::Device dev(geo, timing);
  std::vector<dram::Command> log;
  dev.set_command_log(&log);
  ControllerConfig cfg;
  cfg.refresh_granularity = RefreshGranularity::kPerBank;
  cfg.darp = GetParam().darp;
  cfg.sarp = GetParam().sarp;
  Controller ctl(dev, cfg);
  Rng rng(123);

  std::uint64_t id = 1;
  const dram::MemCycle span = timing.tREFI * 30;
  for (dram::MemCycle now = 0; now < span; ++now) {
    // Alternate busy and quiet stretches so power-down entries and
    // refresh-while-sleeping wakeups both happen.
    const bool quiet = (now / (timing.tREFI / 2)) % 3 == 2;
    if (!quiet && rng.chance(0.25)) {
      // Whole-device traffic so SARP's subarray-overlap rules fire (a
      // small hot region keeps every row in the refresh pointer's own
      // subarray, where overlap is never legal).
      (void)ctl.enqueue_read(rng.next_below(geo.total_lines()) * kLineBytes,
                             id++, now);
    }
    ctl.tick(now);
    (void)ctl.collect_completions(now);

    std::uint32_t total = 0;
    for (std::uint32_t b = 0; b < geo.banks; ++b) {
      ASSERT_LE(ctl.refresh_debt(b), cfg.max_postponed_refreshes)
          << "bank " << b << " over-postponed at cycle " << now;
      total += ctl.refresh_debt(b);
    }
    ASSERT_EQ(total, ctl.pending_refresh_debt())
        << "debt not conserved at cycle " << now;
  }

  std::vector<std::uint64_t> refb_per_bank(geo.banks, 0);
  for (const auto& c : log) {
    if (c.type == dram::CmdType::kRefreshBank) ++refb_per_bank[c.bank];
  }
  const std::uint64_t required =
      span / timing.tREFI - cfg.max_postponed_refreshes - 1;
  for (std::uint32_t b = 0; b < geo.banks; ++b) {
    EXPECT_GE(refb_per_bank[b], required)
        << "bank " << b << " lost retention-window coverage";
  }
  const dram::TimingChecker checker(timing);
  const auto violations = checker.check(log, geo.banks, cfg.sarp);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().to_string());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PerBankRefreshFuzz,
    ::testing::Values(PerBankFuzzParam{"strict", false, false},
                      PerBankFuzzParam{"darp", true, false},
                      PerBankFuzzParam{"darp_sarp", true, true}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(PerBankRefreshFuzz, DebtConservedAcrossDividerMoves) {
  // Flip the refresh divider between 1 and 2 at random points while
  // traffic runs: debt must stay the sum of the per-bank debts, never
  // exceed the cap, and drain to zero once traffic stops (no debt is
  // created or lost by a divider move).
  const dram::Geometry geo;
  const dram::Timing timing;
  dram::Device dev(geo, timing);
  ControllerConfig cfg;
  cfg.refresh_granularity = RefreshGranularity::kPerBank;
  Controller ctl(dev, cfg);
  Rng rng(321);

  std::uint64_t id = 1;
  const dram::MemCycle busy = timing.tREFI * 24;
  for (dram::MemCycle now = 0; now < busy; ++now) {
    if (rng.chance(0.001)) {
      ctl.set_refresh_divider(rng.chance(0.5) ? 1 : 2);
    }
    if (rng.chance(0.2)) {
      (void)ctl.enqueue_read(rng.next_below(1 << 14) * kLineBytes, id++,
                             now);
    }
    ctl.tick(now);
    (void)ctl.collect_completions(now);
    std::uint32_t total = 0;
    for (std::uint32_t b = 0; b < geo.banks; ++b) {
      ASSERT_LE(ctl.refresh_debt(b), cfg.max_postponed_refreshes);
      total += ctl.refresh_debt(b);
    }
    ASSERT_EQ(total, ctl.pending_refresh_debt());
  }
  // Quiesce: strict per-bank refresh drains all debt promptly (well
  // within half an interval even at the worst-case tRFCpb cadence).
  for (dram::MemCycle now = busy; now < busy + timing.tREFI / 2; ++now) {
    ctl.tick(now);
    (void)ctl.collect_completions(now);
  }
  EXPECT_EQ(ctl.pending_refresh_debt(), 0u);
  EXPECT_GT(ctl.stats().counter("refreshes_pb"), 0u);
}

// ---- multi-rank geometry (docs/SCALING.md) ----

TEST(ControllerFuzzMultiRank, NoReadLostAcrossRanks) {
  // Same exactly-once / bounded-latency / drain invariants as the
  // single-rank fuzz, but with two ranks sharing the channel bus and
  // per-rank power-down racing the traffic.
  dram::Geometry geo;
  geo.ranks = 2;
  const dram::Timing timing;
  dram::Device dev(geo, timing);
  ControllerConfig cfg;
  Controller ctl(dev, cfg);
  Rng rng(77);

  std::map<std::uint64_t, dram::MemCycle> outstanding;
  std::set<std::uint64_t> completed;
  std::uint64_t next_id = 1;
  std::uint64_t enqueued_reads = 0;

  const dram::MemCycle kTrafficCycles = 30'000;
  const dram::MemCycle kDrainCycles = 20'000;
  for (dram::MemCycle now = 0; now < kTrafficCycles + kDrainCycles; ++now) {
    if (now < kTrafficCycles && rng.chance(0.15)) {
      // Whole-device addresses so both ranks see traffic.
      const Address addr = rng.next_below(geo.total_lines()) * kLineBytes;
      if (rng.chance(0.65)) {
        if (ctl.enqueue_read(addr, next_id, now)) {
          outstanding.emplace(next_id, now);
          ++next_id;
          ++enqueued_reads;
        }
      } else {
        (void)ctl.enqueue_write(addr, now);
      }
    }
    ctl.tick(now);
    for (const auto& c : ctl.collect_completions(now)) {
      ASSERT_TRUE(outstanding.count(c.id)) << "unknown/duplicate id";
      ASSERT_FALSE(completed.count(c.id)) << "duplicated completion";
      EXPECT_LE(c.done - outstanding[c.id], 4000u);
      completed.insert(c.id);
      outstanding.erase(c.id);
    }
  }

  EXPECT_GT(enqueued_reads, 500u);
  EXPECT_TRUE(outstanding.empty()) << outstanding.size() << " reads lost";
  EXPECT_EQ(completed.size(), enqueued_reads);
  EXPECT_TRUE(ctl.idle());
  EXPECT_GT(ctl.stats().counter("refreshes"), 20u);
}

class PerBankRefreshFuzzMultiRank
    : public ::testing::TestWithParam<PerBankFuzzParam> {};

TEST_P(PerBankRefreshFuzzMultiRank, CoverageAndDebtInvariantsHold) {
  // The PR 7 leftover: the per-bank debt/coverage invariants must hold
  // bank-by-bank across BOTH ranks — debt indexed by global bank id,
  // every one of the ranks x banks banks keeping its retention window.
  dram::Geometry geo;
  geo.ranks = 2;
  const dram::Timing timing;
  dram::Device dev(geo, timing);
  const std::uint32_t total_banks = geo.banks * geo.ranks;
  std::vector<dram::Command> log;
  dev.set_command_log(&log);
  ControllerConfig cfg;
  cfg.refresh_granularity = RefreshGranularity::kPerBank;
  cfg.darp = GetParam().darp;
  cfg.sarp = GetParam().sarp;
  Controller ctl(dev, cfg);
  Rng rng(456);

  std::uint64_t id = 1;
  const dram::MemCycle span = timing.tREFI * 30;
  for (dram::MemCycle now = 0; now < span; ++now) {
    const bool quiet = (now / (timing.tREFI / 2)) % 3 == 2;
    if (!quiet && rng.chance(0.25)) {
      (void)ctl.enqueue_read(rng.next_below(geo.total_lines()) * kLineBytes,
                             id++, now);
    }
    ctl.tick(now);
    (void)ctl.collect_completions(now);

    std::uint32_t total = 0;
    for (std::uint32_t b = 0; b < total_banks; ++b) {
      ASSERT_LE(ctl.refresh_debt(b), cfg.max_postponed_refreshes)
          << "bank " << b << " over-postponed at cycle " << now;
      total += ctl.refresh_debt(b);
    }
    ASSERT_EQ(total, ctl.pending_refresh_debt())
        << "debt not conserved at cycle " << now;
  }

  std::vector<std::uint64_t> refb_per_bank(total_banks, 0);
  for (const auto& c : log) {
    if (c.type == dram::CmdType::kRefreshBank) ++refb_per_bank[c.bank];
  }
  const std::uint64_t required =
      span / timing.tREFI - cfg.max_postponed_refreshes - 1;
  for (std::uint32_t b = 0; b < total_banks; ++b) {
    EXPECT_GE(refb_per_bank[b], required)
        << "bank " << b << " lost retention-window coverage";
  }
  const dram::TimingChecker checker(timing);
  const auto violations =
      checker.check(log, total_banks, cfg.sarp, geo.banks);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().to_string());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PerBankRefreshFuzzMultiRank,
    ::testing::Values(PerBankFuzzParam{"strict", false, false},
                      PerBankFuzzParam{"darp", true, false},
                      PerBankFuzzParam{"darp_sarp", true, true}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace mecc::memctrl
