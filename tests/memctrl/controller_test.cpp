#include "memctrl/controller.h"

#include <gtest/gtest.h>

#include "memctrl/address_map.h"

namespace mecc::memctrl {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : dev_(geo_, t_), ctl_(dev_, cfg_) {}

  /// Runs the controller for `cycles` memory cycles, collecting reads.
  std::vector<ReadCompletion> run(dram::MemCycle cycles) {
    std::vector<ReadCompletion> all;
    for (; now_ < cycles; ++now_) {
      ctl_.tick(now_);
      for (auto& c : ctl_.collect_completions(now_)) all.push_back(c);
    }
    return all;
  }

  dram::Geometry geo_;
  dram::Timing t_;
  ControllerConfig cfg_;
  dram::Device dev_;
  Controller ctl_;
  dram::MemCycle now_ = 0;
};

TEST_F(ControllerTest, SingleReadCompletes) {
  ASSERT_TRUE(ctl_.enqueue_read(0x1000, 7, 0));
  const auto done = run(100);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, 7u);
  EXPECT_EQ(done[0].line_addr, 0x1000u);
  EXPECT_FALSE(done[0].forwarded);
  // ACT + tRCD + tCL + tBURST lower-bounds the latency.
  EXPECT_GE(done[0].done, static_cast<dram::MemCycle>(
                              t_.tRCD + t_.tCL + t_.tBURST));
  EXPECT_TRUE(ctl_.idle());
}

TEST_F(ControllerTest, RowHitFasterThanRowMiss) {
  AddressMap map(geo_);
  // Two lines in the same row vs a line in a different row of the same
  // bank.
  const Address a = map.encode({.bank = 0, .row = 10, .col = 0});
  const Address b = map.encode({.bank = 0, .row = 10, .col = 1});
  const Address c = map.encode({.bank = 0, .row = 99, .col = 0});

  ASSERT_TRUE(ctl_.enqueue_read(a, 1, 0));
  ASSERT_TRUE(ctl_.enqueue_read(b, 2, 0));
  ASSERT_TRUE(ctl_.enqueue_read(c, 3, 0));
  const auto done = run(200);
  ASSERT_EQ(done.size(), 3u);
  const auto gap_hit = done[1].done - done[0].done;    // row hit
  const auto gap_miss = done[2].done - done[1].done;   // PRE + ACT + ...
  EXPECT_LT(gap_hit, gap_miss);
  EXPECT_GE(ctl_.stats().counter("row_hits"), 1u);
  EXPECT_GE(ctl_.stats().counter("row_conflicts"), 1u);
}

TEST_F(ControllerTest, WriteForwardingServesReadImmediately) {
  ASSERT_TRUE(ctl_.enqueue_write(0x2000, 0));
  ASSERT_TRUE(ctl_.enqueue_read(0x2000, 5, 0));
  const auto done = run(50);
  ASSERT_GE(done.size(), 1u);
  EXPECT_TRUE(done[0].forwarded);
  EXPECT_LE(done[0].done, 2u);
  EXPECT_EQ(ctl_.stats().counter("reads_forwarded"), 1u);
}

TEST_F(ControllerTest, WritesCoalesce) {
  ASSERT_TRUE(ctl_.enqueue_write(0x3000, 0));
  ASSERT_TRUE(ctl_.enqueue_write(0x3000, 0));
  EXPECT_EQ(ctl_.write_queue_depth(), 1u);
  EXPECT_EQ(ctl_.stats().counter("writes_coalesced"), 1u);
}

TEST_F(ControllerTest, ReadQueueBackpressure) {
  for (std::size_t i = 0; i < cfg_.read_queue_size; ++i) {
    ASSERT_TRUE(ctl_.enqueue_read(0x100000 + i * 4096, i, 0));
  }
  EXPECT_FALSE(ctl_.enqueue_read(0x999000, 99, 0));
  (void)run(4000);
  EXPECT_TRUE(ctl_.idle());
}

TEST_F(ControllerTest, RefreshIssuedAtTrefi) {
  (void)run(t_.tREFI * 3 + 100);
  EXPECT_GE(ctl_.stats().counter("refreshes"), 2u);
  EXPECT_LE(ctl_.stats().counter("refreshes"), 4u);
}

TEST_F(ControllerTest, RefreshDividerSlowsRefresh) {
  ctl_.set_refresh_divider(16);
  (void)run(t_.tREFI * 16 + 100);
  // With divider 16 only ~1 refresh in 16 tREFI.
  EXPECT_LE(ctl_.stats().counter("refreshes"), 2u);
}

TEST_F(ControllerTest, RefreshDisabledIssuesNone) {
  ctl_.set_refresh_enabled(false);
  (void)run(t_.tREFI * 4);
  EXPECT_EQ(ctl_.stats().counter("refreshes"), 0u);
}

TEST_F(ControllerTest, AggressivePowerDownWhenIdle) {
  (void)run(200);
  EXPECT_TRUE(dev_.in_power_down());
  EXPECT_GE(ctl_.stats().counter("pd_entries"), 1u);
}

TEST_F(ControllerTest, PowerDownExitsForTraffic) {
  (void)run(200);
  ASSERT_TRUE(dev_.in_power_down());
  ASSERT_TRUE(ctl_.enqueue_read(0x4000, 1, now_));
  const auto done = run(now_ + 100);
  EXPECT_EQ(done.size(), 1u);
  EXPECT_GE(ctl_.stats().counter("pd_exits"), 1u);
}

TEST_F(ControllerTest, PowerDownExitsForRefresh) {
  (void)run(t_.tREFI + 50);
  EXPECT_GE(ctl_.stats().counter("refreshes"), 1u);
  EXPECT_GE(ctl_.stats().counter("pd_exits_for_refresh"), 1u);
}

TEST_F(ControllerTest, WritesDrainEventually) {
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ctl_.enqueue_write(0x10000 + i * 64, 0));
  }
  (void)run(2000);
  EXPECT_EQ(ctl_.write_queue_depth(), 0u);
  EXPECT_TRUE(ctl_.idle());
}

TEST_F(ControllerTest, ReadsPrioritizedOverWritesBelowWatermark) {
  // A few writes (below the drain watermark) plus a read: the read's
  // completion should not wait for all writes.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ctl_.enqueue_write(0x20000 + i * 4096, 0));
  }
  ASSERT_TRUE(ctl_.enqueue_read(0x80000, 1, 0));
  const auto done = run(300);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_LE(done[0].done, 60u);
}

TEST_F(ControllerTest, BankParallelismOverlapsReads) {
  AddressMap map(geo_);
  // Same bank, different rows: serialized by PRE/ACT.
  const Address same_bank_a = map.encode({.bank = 1, .row = 1, .col = 0});
  const Address same_bank_b = map.encode({.bank = 1, .row = 2, .col = 0});
  ASSERT_TRUE(ctl_.enqueue_read(same_bank_a, 1, 0));
  ASSERT_TRUE(ctl_.enqueue_read(same_bank_b, 2, 0));
  const auto serial = run(500);
  ASSERT_EQ(serial.size(), 2u);
  const auto serial_span = serial[1].done;

  // Fresh controller: different banks overlap.
  dram::Device dev2(geo_, t_);
  Controller ctl2(dev2, cfg_);
  const Address diff_bank_a = map.encode({.bank = 0, .row = 1, .col = 0});
  const Address diff_bank_b = map.encode({.bank = 2, .row = 2, .col = 0});
  ASSERT_TRUE(ctl2.enqueue_read(diff_bank_a, 1, 0));
  ASSERT_TRUE(ctl2.enqueue_read(diff_bank_b, 2, 0));
  std::vector<ReadCompletion> parallel;
  for (dram::MemCycle now = 0; now < 500; ++now) {
    ctl2.tick(now);
    for (auto& c : ctl2.collect_completions(now)) parallel.push_back(c);
  }
  ASSERT_EQ(parallel.size(), 2u);
  EXPECT_LT(parallel[1].done, serial_span);
}

}  // namespace
}  // namespace mecc::memctrl
