#include "memctrl/due_policy.h"

#include <gtest/gtest.h>

#include <string>

namespace mecc::memctrl {
namespace {

TEST(DuePolicy, LadderClimbsOneRungPerEscalation) {
  DuePolicy p{DuePolicyConfig{}};
  EXPECT_EQ(p.level(), 0u);
  EXPECT_FALSE(p.degraded());
  EXPECT_EQ(p.escalate(), DueAction::kScrub);
  EXPECT_EQ(p.level(), 1u);
  EXPECT_EQ(p.escalate(), DueAction::kForceUpgrade);
  EXPECT_EQ(p.level(), 2u);
  EXPECT_EQ(p.escalate(), DueAction::kRefreshFallback);
  EXPECT_EQ(p.level(), 3u);
  EXPECT_TRUE(p.degraded());
  // Ladder exhausted: further DUEs have nothing left to try.
  EXPECT_EQ(p.escalate(), DueAction::kNone);
  EXPECT_EQ(p.level(), 3u);
  EXPECT_TRUE(p.degraded());
}

TEST(DuePolicy, DisabledRungsAreSkippedWithinOneEscalation) {
  DuePolicyConfig cfg;
  cfg.scrub_enabled = false;
  cfg.upgrade_enabled = false;
  DuePolicy p{cfg};
  // First escalation jumps straight to the refresh fallback.
  EXPECT_EQ(p.escalate(), DueAction::kRefreshFallback);
  EXPECT_TRUE(p.degraded());
  EXPECT_EQ(p.level(), 3u);
}

TEST(DuePolicy, FullyDisabledLadderNeverDegrades) {
  DuePolicyConfig cfg;
  cfg.scrub_enabled = false;
  cfg.upgrade_enabled = false;
  cfg.fallback_enabled = false;
  DuePolicy p{cfg};
  EXPECT_EQ(p.escalate(), DueAction::kNone);
  EXPECT_EQ(p.escalate(), DueAction::kNone);
  EXPECT_FALSE(p.degraded());
  EXPECT_EQ(p.level(), 3u);  // rungs burned, but nothing acted
}

TEST(DuePolicy, StatsCountEveryEvent) {
  DuePolicy p{DuePolicyConfig{}};
  p.on_ce(3);
  p.on_ce(2);
  p.on_silent_corruption();
  p.on_due();
  p.on_retry(false);
  p.on_retry(true);
  (void)p.escalate();  // scrub
  (void)p.escalate();  // upgrade
  (void)p.escalate();  // fallback

  StatSet s;
  p.export_stats(s);
  EXPECT_EQ(s.counter("ce"), 2u);
  EXPECT_EQ(s.counter("ce_bits"), 5u);
  EXPECT_EQ(s.counter("silent"), 1u);
  EXPECT_EQ(s.counter("due"), 1u);
  EXPECT_EQ(s.counter("retries"), 2u);
  EXPECT_EQ(s.counter("retry_success"), 1u);
  EXPECT_EQ(s.counter("scrubs"), 1u);
  EXPECT_EQ(s.counter("forced_upgrades"), 1u);
  EXPECT_EQ(s.counter("refresh_fallbacks"), 1u);
  EXPECT_DOUBLE_EQ(s.gauge("degraded"), 1.0);
  EXPECT_DOUBLE_EQ(s.gauge("escalation_level"), 3.0);
}

TEST(DuePolicy, ActionNames) {
  EXPECT_EQ(std::string(due_action_name(DueAction::kNone)), "none");
  EXPECT_EQ(std::string(due_action_name(DueAction::kScrub)), "scrub");
  EXPECT_EQ(std::string(due_action_name(DueAction::kForceUpgrade)),
            "force_upgrade");
  EXPECT_EQ(std::string(due_action_name(DueAction::kRefreshFallback)),
            "refresh_fallback");
}

}  // namespace
}  // namespace mecc::memctrl
