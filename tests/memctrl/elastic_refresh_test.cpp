#include <gtest/gtest.h>

#include "common/rng.h"
#include "dram/timing_checker.h"
#include "memctrl/controller.h"

namespace mecc::memctrl {
namespace {

struct Harness {
  explicit Harness(const ControllerConfig& cfg)
      : dev(geo, timing), ctl(dev, cfg) {}

  /// Runs with a saturating read stream for `cycles`.
  void run_saturated(dram::MemCycle cycles, std::uint64_t seed) {
    Rng rng(seed);
    std::uint64_t id = 1;
    for (dram::MemCycle now = 0; now < cycles; ++now) {
      (void)ctl.enqueue_read(rng.next_below(1 << 14) * kLineBytes, id++,
                             now);
      ctl.tick(now);
      completions += ctl.collect_completions(now).size();
    }
  }

  dram::Geometry geo;
  dram::Timing timing;
  dram::Device dev;
  Controller ctl;
  std::uint64_t completions = 0;
};

TEST(ElasticRefresh, PostponesUnderLoadButNeverBeyondBudget) {
  ControllerConfig cfg;
  cfg.elastic_refresh = true;
  Harness h(cfg);
  const dram::MemCycle span = h.timing.tREFI * 40;
  h.run_saturated(span, 1);
  const std::uint64_t refreshes = h.ctl.stats().counter("refreshes");
  // All accrued refreshes minus at most the postpone budget must have
  // been issued.
  EXPECT_GE(refreshes + cfg.max_postponed_refreshes, 40u);
  EXPECT_LE(refreshes, 41u);
}

TEST(ElasticRefresh, ImprovesThroughputUnderSaturation) {
  ControllerConfig strict;
  Harness hs(strict);
  ControllerConfig elastic;
  elastic.elastic_refresh = true;
  Harness he(elastic);
  const dram::MemCycle span = hs.timing.tREFI * 30;
  hs.run_saturated(span, 2);
  he.run_saturated(span, 2);
  // Elastic refresh batches REF into natural gaps; with a saturating
  // random stream it should not do measurably worse.
  EXPECT_GE(he.completions + 50, hs.completions);
}

TEST(ElasticRefresh, CatchesUpWhenIdle) {
  ControllerConfig cfg;
  cfg.elastic_refresh = true;
  Harness h(cfg);
  // Busy for 10 intervals, then idle for 2: debt must drain.
  Rng rng(3);
  std::uint64_t id = 1;
  const dram::MemCycle busy = h.timing.tREFI * 10;
  for (dram::MemCycle now = 0; now < busy + h.timing.tREFI * 2; ++now) {
    if (now < busy) {
      (void)h.ctl.enqueue_read(rng.next_below(4096) * kLineBytes, id++, now);
    }
    h.ctl.tick(now);
    (void)h.ctl.collect_completions(now);
  }
  EXPECT_GE(h.ctl.stats().counter("refreshes"), 11u);
}

TEST(ElasticRefresh, ScheduleStaysTimingClean) {
  ControllerConfig cfg;
  cfg.elastic_refresh = true;
  dram::Geometry geo;
  dram::Timing timing;
  dram::Device dev(geo, timing);
  std::vector<dram::Command> log;
  dev.set_command_log(&log);
  Controller ctl(dev, cfg);
  Rng rng(4);
  std::uint64_t id = 1;
  for (dram::MemCycle now = 0; now < timing.tREFI * 20; ++now) {
    if (rng.chance(0.3)) {
      (void)ctl.enqueue_read(rng.next_below(1 << 14) * kLineBytes, id++,
                             now);
    }
    ctl.tick(now);
    (void)ctl.collect_completions(now);
  }
  const dram::TimingChecker checker(timing);
  const auto violations = checker.check(log, geo.banks);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().to_string());
}

TEST(ElasticRefresh, DisabledBehavesStrictly) {
  ControllerConfig cfg;  // elastic off
  Harness h(cfg);
  h.run_saturated(h.timing.tREFI * 20, 5);
  // Strict mode issues one refresh per interval, immediately.
  EXPECT_GE(h.ctl.stats().counter("refreshes"), 19u);
}

// Elastic composes with per-bank granularity (docs/SCHEDULING.md): all
// banks postpone while demand is pending, each within the same
// per-bank budget, and the debt drains once the bus quiets down.
TEST(ElasticRefresh, PerBankPostponesWithinBudgetUnderLoad) {
  ControllerConfig cfg;
  cfg.refresh_granularity = RefreshGranularity::kPerBank;
  cfg.elastic_refresh = true;
  Harness h(cfg);
  const dram::MemCycle span = h.timing.tREFI * 40;
  h.run_saturated(span, 6);
  const std::uint64_t refs_pb = h.ctl.stats().counter("refreshes_pb");
  const std::uint64_t banks = h.geo.banks;
  // Every bank accrued ~40 refreshes; at most the postpone budget per
  // bank may still be outstanding.
  EXPECT_GE(refs_pb + banks * cfg.max_postponed_refreshes, 40u * banks);
  EXPECT_LE(refs_pb, 41u * banks);
  for (std::uint32_t b = 0; b < h.geo.banks; ++b) {
    EXPECT_LE(h.ctl.refresh_debt(b), cfg.max_postponed_refreshes)
        << "bank " << b;
  }
}

TEST(ElasticRefresh, PerBankCatchesUpWhenIdle) {
  ControllerConfig cfg;
  cfg.refresh_granularity = RefreshGranularity::kPerBank;
  cfg.elastic_refresh = true;
  Harness h(cfg);
  Rng rng(8);
  std::uint64_t id = 1;
  const dram::MemCycle busy = h.timing.tREFI * 10;
  for (dram::MemCycle now = 0; now < busy + h.timing.tREFI * 2; ++now) {
    if (now < busy) {
      (void)h.ctl.enqueue_read(rng.next_below(4096) * kLineBytes, id++, now);
    }
    h.ctl.tick(now);
    (void)h.ctl.collect_completions(now);
  }
  EXPECT_GE(h.ctl.stats().counter("refreshes_pb"),
            11u * h.geo.banks);
  EXPECT_EQ(h.ctl.pending_refresh_debt(), 0u);
}

TEST(ElasticRefresh, PerBankScheduleStaysTimingClean) {
  ControllerConfig cfg;
  cfg.refresh_granularity = RefreshGranularity::kPerBank;
  cfg.elastic_refresh = true;
  dram::Geometry geo;
  dram::Timing timing;
  dram::Device dev(geo, timing);
  std::vector<dram::Command> log;
  dev.set_command_log(&log);
  Controller ctl(dev, cfg);
  Rng rng(9);
  std::uint64_t id = 1;
  for (dram::MemCycle now = 0; now < timing.tREFI * 20; ++now) {
    if (rng.chance(0.3)) {
      (void)ctl.enqueue_read(rng.next_below(1 << 14) * kLineBytes, id++,
                             now);
    }
    ctl.tick(now);
    (void)ctl.collect_completions(now);
  }
  const dram::TimingChecker checker(timing);
  const auto violations = checker.check(log, geo.banks);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().to_string());
}

}  // namespace
}  // namespace mecc::memctrl
