#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "dram/timing_checker.h"
#include "memctrl/controller.h"

namespace mecc::memctrl {
namespace {

struct DriveResult {
  std::uint64_t row_hits = 0;
  std::uint64_t activations = 0;  // "row_misses" stat = ACT commands
  std::uint64_t row_conflicts = 0;
  std::uint64_t closed_precharges = 0;
  double avg_latency = 0.0;
  std::vector<dram::Command> log;
};

/// Drives one controller over a fixed access pattern.
DriveResult drive(PagePolicy policy, bool sequential, std::uint64_t seed) {
  const dram::Geometry geo;
  const dram::Timing timing;
  dram::Device dev(geo, timing);
  ControllerConfig cfg;
  cfg.page_policy = policy;
  // Keep power-down out of the picture: aggressive PD also closes rows,
  // which would mask the policy difference under sparse traffic.
  cfg.power_down_idle_threshold = 1'000'000;
  DriveResult out;
  dev.set_command_log(&out.log);
  Controller ctl(dev, cfg);
  Rng rng(seed);

  std::map<std::uint64_t, dram::MemCycle> issue_time;
  std::uint64_t id = 1;
  double latency_sum = 0.0;
  std::uint64_t done = 0;
  Address seq_addr = 0;
  for (dram::MemCycle now = 0; now < 50'000; ++now) {
    if (now < 40'000 && now % 20 == 0) {
      Address addr;
      if (sequential) {
        addr = seq_addr;
        seq_addr += kLineBytes;
      } else {
        addr = rng.next_below(1 << 18) * kLineBytes;  // 16 MB random
      }
      if (ctl.enqueue_read(addr, id, now)) issue_time[id++] = now;
    }
    ctl.tick(now);
    for (const auto& c : ctl.collect_completions(now)) {
      latency_sum += static_cast<double>(c.done - issue_time[c.id]);
      ++done;
    }
  }
  out.row_hits = ctl.stats().counter("row_hits");
  out.activations = ctl.stats().counter("row_misses");
  out.row_conflicts = ctl.stats().counter("row_conflicts");
  out.closed_precharges = ctl.stats().counter("closed_page_precharges");
  out.avg_latency = done > 0 ? latency_sum / static_cast<double>(done) : 0.0;
  return out;
}

TEST(PagePolicy, ClosedPolicyPrechargesProactively) {
  const DriveResult closed = drive(PagePolicy::kClosed, /*sequential=*/false, 1);
  EXPECT_GT(closed.closed_precharges, 100u);
  const DriveResult open = drive(PagePolicy::kOpen, false, 1);
  EXPECT_EQ(open.closed_precharges, 0u);
}

TEST(PagePolicy, ClosedAvoidsConflictPrecharges) {
  // Random traffic: with rows closed eagerly, misses find banks already
  // precharged instead of paying a conflict PRE first.
  const DriveResult open = drive(PagePolicy::kOpen, false, 2);
  const DriveResult closed = drive(PagePolicy::kClosed, false, 2);
  EXPECT_LT(closed.row_conflicts, open.row_conflicts);
  EXPECT_LE(closed.avg_latency, open.avg_latency + 1.0);
}

TEST(PagePolicy, OpenWinsOnSequentialStreams) {
  // Sequential traffic loves open rows. With one access per 20 cycles
  // and no queue pressure, closed-page closes the row between accesses
  // and must re-activate for nearly every access, while open-page
  // re-activates only on genuine row transitions.
  const DriveResult open = drive(PagePolicy::kOpen, true, 3);
  const DriveResult closed = drive(PagePolicy::kClosed, true, 3);
  EXPECT_LT(open.activations, closed.activations / 10);
  EXPECT_LE(open.avg_latency, closed.avg_latency + 1.0);
}

TEST(PagePolicy, ClosedScheduleStaysTimingClean) {
  const DriveResult closed = drive(PagePolicy::kClosed, false, 4);
  const dram::TimingChecker checker((dram::Timing()));
  const auto violations = checker.check(closed.log, dram::Geometry().banks);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().to_string());
}

}  // namespace
}  // namespace mecc::memctrl
