// Refresh-invariant test layer for the per-bank refresh policies
// (docs/SCHEDULING.md): per-bank coverage and energy equivalence with
// the all-bank baseline, the post-self-refresh resync contract, DARP's
// bounded postpone/pull-in behavior, SARP's subarray overlap, and
// TimingChecker-clean command schedules for every policy.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dram/timing_checker.h"
#include "memctrl/controller.h"
#include "power/power_model.h"

namespace mecc::memctrl {
namespace {

struct Harness {
  explicit Harness(const ControllerConfig& cfg)
      : dev(geo, timing), ctl(dev, cfg) {}

  void run_saturated(dram::MemCycle cycles, std::uint64_t seed,
                     dram::MemCycle start = 0, std::uint64_t lines = 1 << 14) {
    Rng rng(seed);
    std::uint64_t id = 1;
    for (dram::MemCycle now = start; now < start + cycles; ++now) {
      (void)ctl.enqueue_read(rng.next_below(lines) * kLineBytes, id++,
                             now);
      ctl.tick(now);
      (void)ctl.collect_completions(now);
    }
  }

  void run_idle(dram::MemCycle cycles, dram::MemCycle start = 0) {
    for (dram::MemCycle now = start; now < start + cycles; ++now) {
      ctl.tick(now);
      (void)ctl.collect_completions(now);
    }
  }

  dram::Geometry geo;
  dram::Timing timing;
  dram::Device dev;
  Controller ctl;
};

[[nodiscard]] ControllerConfig per_bank_config(bool darp = false,
                                               bool sarp = false) {
  ControllerConfig cfg;
  cfg.refresh_granularity = RefreshGranularity::kPerBank;
  cfg.darp = darp;
  cfg.sarp = sarp;
  return cfg;
}

TEST(PerBankRefresh, MatchesAllBankCoverage) {
  // `banks` REFpb per tREFI carry the same rows-per-window coverage as
  // one all-bank REF per tREFI, so over the same idle span the per-bank
  // controller must issue ~banks x the all-bank command count.
  Harness ab{ControllerConfig{}};
  Harness pb{per_bank_config()};
  const dram::MemCycle span = ab.timing.tREFI * 40;
  ab.run_idle(span);
  pb.run_idle(span);
  const std::uint64_t refs = ab.ctl.stats().counter("refreshes");
  const std::uint64_t refs_pb = pb.ctl.stats().counter("refreshes_pb");
  EXPECT_GE(refs, 39u);
  // Stagger rounding shifts the count by at most one bank sweep.
  EXPECT_NEAR(static_cast<double>(refs_pb),
              static_cast<double>(refs * ab.geo.banks),
              static_cast<double>(ab.geo.banks));
  EXPECT_EQ(pb.ctl.stats().counter("refreshes"), 0u);
}

TEST(PerBankRefresh, EnergyMatchesAllBankAtSameRate) {
  // A REFpb is charged 1/banks of the all-bank command energy, so the
  // two granularities must dissipate the same refresh energy at the
  // same rate (divider 1, no DARP pull-ins).
  Harness ab{ControllerConfig{}};
  Harness pb{per_bank_config()};
  const dram::MemCycle span = ab.timing.tREFI * 60;
  ab.run_saturated(span, 7);
  pb.run_saturated(span, 7);
  const power::PowerModel pm({}, ab.timing, ab.geo.banks);
  const double ab_mj = pm.active_energy(ab.dev.counters(span)).refresh_mj;
  const double pb_mj = pm.active_energy(pb.dev.counters(span)).refresh_mj;
  ASSERT_GT(ab_mj, 0.0);
  EXPECT_NEAR(pb_mj, ab_mj, ab_mj * 0.05);
}

TEST(PerBankRefresh, ResyncRestartsScheduleWithoutBurst) {
  // Satellite regression: resync_refresh after a self-refresh stay must
  // clear every bank's debt and push every due time past `now` —
  // leaving the old per-bank due times in place replayed the whole
  // missed schedule as an immediate REFpb burst on wake.
  Harness h{per_bank_config()};
  h.run_idle(h.timing.tREFI * 10);
  // A long self-refresh stay the controller did not tick through.
  const dram::MemCycle wake = h.timing.tREFI * 1000;
  h.ctl.resync_refresh(wake);
  EXPECT_EQ(h.ctl.pending_refresh_debt(), 0u);
  for (std::uint32_t b = 0; b < h.geo.banks; ++b) {
    EXPECT_GT(h.ctl.bank_next_refresh(b), wake) << "bank " << b;
    EXPECT_EQ(h.ctl.refresh_debt(b), 0u) << "bank " << b;
  }
  const std::uint64_t before = h.ctl.stats().counter("refreshes_pb");
  // The first post-resync due time is wake + tREFI/banks; no REFpb may
  // issue before it.
  h.run_idle(h.timing.tREFI / h.geo.banks - 1, wake);
  EXPECT_EQ(h.ctl.stats().counter("refreshes_pb"), before);
}

TEST(PerBankRefresh, AllBankResyncStillClearsDebt) {
  Harness h{ControllerConfig{}};
  h.run_idle(h.timing.tREFI * 5);
  const dram::MemCycle wake = h.timing.tREFI * 500;
  h.ctl.resync_refresh(wake);
  EXPECT_EQ(h.ctl.pending_refresh_debt(), 0u);
  const std::uint64_t before = h.ctl.stats().counter("refreshes");
  h.run_idle(h.timing.tREFI - 1, wake);
  EXPECT_EQ(h.ctl.stats().counter("refreshes"), before);
}

TEST(DarpRefresh, PostponeBoundedBySaturatedTraffic) {
  // DARP postpones a busy bank's refresh, but never beyond
  // max_postponed_refreshes periods of debt.
  Harness h{per_bank_config(/*darp=*/true)};
  Rng rng(11);
  std::uint64_t id = 1;
  const dram::MemCycle span = h.timing.tREFI * 40;
  for (dram::MemCycle now = 0; now < span; ++now) {
    (void)h.ctl.enqueue_read(rng.next_below(1 << 14) * kLineBytes, id++,
                             now);
    h.ctl.tick(now);
    (void)h.ctl.collect_completions(now);
    for (std::uint32_t b = 0; b < h.geo.banks; ++b) {
      ASSERT_LE(h.ctl.refresh_debt(b),
                h.ctl.config().max_postponed_refreshes)
          << "bank " << b << " at cycle " << now;
    }
  }
  // Coverage still holds: each bank owes one REFpb per tREFI minus the
  // postpone budget.
  const std::uint64_t refs_pb = h.ctl.stats().counter("refreshes_pb");
  EXPECT_GE(refs_pb + static_cast<std::uint64_t>(
                          h.geo.banks *
                          h.ctl.config().max_postponed_refreshes),
            40u * h.geo.banks);
}

TEST(DarpRefresh, PullsInAheadOfScheduleWhenBankIdle) {
  Harness h{per_bank_config(/*darp=*/true)};
  // Traffic then a long quiet stretch: the pull-in machinery should
  // refresh ahead of schedule during the quiet part.
  h.run_saturated(h.timing.tREFI * 4, 13);
  h.run_idle(h.timing.tREFI * 4, h.timing.tREFI * 4);
  EXPECT_GT(h.ctl.stats().counter("refresh_pull_ins"), 0u);
  // Pull-ins spend future budget: due times moved out, debts stayed 0.
  EXPECT_EQ(h.ctl.pending_refresh_debt(), 0u);
}

TEST(DarpRefresh, ScheduleStaysTimingClean) {
  dram::Geometry geo;
  dram::Timing timing;
  dram::Device dev(geo, timing);
  std::vector<dram::Command> log;
  dev.set_command_log(&log);
  Controller ctl(dev, per_bank_config(/*darp=*/true));
  Rng rng(17);
  std::uint64_t id = 1;
  for (dram::MemCycle now = 0; now < timing.tREFI * 20; ++now) {
    if (rng.chance(0.3)) {
      (void)ctl.enqueue_read(rng.next_below(1 << 14) * kLineBytes, id++,
                             now);
    }
    ctl.tick(now);
    (void)ctl.collect_completions(now);
  }
  const dram::TimingChecker checker(timing);
  const auto violations = checker.check(log, geo.banks);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().to_string());
}

TEST(SarpRefresh, OverlapsDemandWithRefresh) {
  // With SARP, a REFpb may issue while the bank holds a row open in a
  // different subarray, and reads keep completing during the refresh.
  // Traffic must span the whole device: a small hot region decodes to
  // the low rows only — all inside the subarray the refresh pointer
  // starts in, where overlap is (correctly) never legal.
  Harness h{per_bank_config(/*darp=*/true, /*sarp=*/true)};
  h.run_saturated(h.timing.tREFI * 40, 19, 0, h.geo.total_lines());
  EXPECT_GT(h.ctl.stats().counter("sarp_overlap_refreshes"), 0u);
  EXPECT_GT(h.ctl.stats().counter("refreshes_pb"), 0u);
}

TEST(SarpRefresh, ScheduleStaysTimingCleanUnderOverlapRules) {
  dram::Geometry geo;
  dram::Timing timing;
  dram::Device dev(geo, timing);
  std::vector<dram::Command> log;
  dev.set_command_log(&log);
  Controller ctl(dev, per_bank_config(/*darp=*/true, /*sarp=*/true));
  Rng rng(23);
  std::uint64_t id = 1;
  for (dram::MemCycle now = 0; now < timing.tREFI * 20; ++now) {
    if (rng.chance(0.4)) {
      // Whole-device traffic so rows land in every subarray and the
      // overlap rules actually fire (see OverlapsDemandWithRefresh).
      (void)ctl.enqueue_read(rng.next_below(geo.total_lines()) * kLineBytes,
                             id++, now);
    }
    ctl.tick(now);
    (void)ctl.collect_completions(now);
  }
  const dram::TimingChecker checker(timing);
  // sarp_overlap relaxes exactly the open-row / tRP-before-REFB rules;
  // everything else (tRFCpb gaps, tRC, bus) must still hold.
  const auto violations = checker.check(log, geo.banks, /*sarp_overlap=*/true);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().to_string());
}

TEST(PerBankRefresh, AllBankConfigDropsDarpSarp) {
  // The constructor normalizes: DARP/SARP mean nothing under the
  // rank-wide REF command.
  ControllerConfig cfg;
  cfg.refresh_granularity = RefreshGranularity::kAllBank;
  cfg.darp = true;
  cfg.sarp = true;
  dram::Geometry geo;
  dram::Timing timing;
  dram::Device dev(geo, timing);
  Controller ctl(dev, cfg);
  EXPECT_FALSE(ctl.config().darp);
  EXPECT_FALSE(ctl.config().sarp);
  EXPECT_FALSE(dev.sarp_overlap());
}

TEST(PerBankRefresh, StrictScheduleStaysTimingClean) {
  dram::Geometry geo;
  dram::Timing timing;
  dram::Device dev(geo, timing);
  std::vector<dram::Command> log;
  dev.set_command_log(&log);
  Controller ctl(dev, per_bank_config());
  Rng rng(29);
  std::uint64_t id = 1;
  for (dram::MemCycle now = 0; now < timing.tREFI * 20; ++now) {
    if (rng.chance(0.3)) {
      (void)ctl.enqueue_read(rng.next_below(1 << 14) * kLineBytes, id++,
                             now);
    }
    ctl.tick(now);
    (void)ctl.collect_completions(now);
  }
  const dram::TimingChecker checker(timing);
  const auto violations = checker.check(log, geo.banks);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().to_string());
}

}  // namespace
}  // namespace mecc::memctrl
