#include "power/idle_modes.h"

#include <gtest/gtest.h>

namespace mecc::power {
namespace {

class IdleModesTest : public ::testing::Test {
 protected:
  PowerModel pm_;
  std::vector<IdleModeOption> options_ = idle_mode_options(pm_, 1024.0);

  const IdleModeOption& find(const std::string& prefix) {
    for (const auto& o : options_) {
      if (o.name.rfind(prefix, 0) == 0) return o;
    }
    ADD_FAILURE() << "no option named " << prefix;
    static IdleModeOption dummy;
    return dummy;
  }
};

TEST_F(IdleModesTest, FourOptions) { EXPECT_EQ(options_.size(), 4u); }

TEST_F(IdleModesTest, PowerOrdering) {
  // DPD < PASR(25%) < MECC < SR(64ms): MECC lands in the PASR class of
  // power while keeping the whole array alive.
  EXPECT_LT(find("Deep Power Down").power_mw, find("PASR").power_mw);
  EXPECT_LT(find("PASR").power_mw, find("MECC").power_mw);
  EXPECT_LT(find("MECC").power_mw, find("Self Refresh").power_mw);
  // Within 30% of PASR's power despite retaining 4x the capacity.
  EXPECT_LT(find("MECC").power_mw / find("PASR").power_mw, 1.3);
}

TEST_F(IdleModesTest, OnlyFullRefreshModesKeepState) {
  EXPECT_TRUE(find("Self Refresh").state_preserved);
  EXPECT_TRUE(find("MECC").state_preserved);
  EXPECT_FALSE(find("PASR").state_preserved);
  EXPECT_FALSE(find("Deep Power Down").state_preserved);
}

TEST_F(IdleModesTest, CapacityFractions) {
  EXPECT_DOUBLE_EQ(find("Self Refresh").usable_capacity_fraction, 1.0);
  EXPECT_DOUBLE_EQ(find("MECC").usable_capacity_fraction, 1.0);
  EXPECT_DOUBLE_EQ(find("PASR").usable_capacity_fraction, 0.25);
  EXPECT_DOUBLE_EQ(find("Deep Power Down").usable_capacity_fraction, 0.0);
}

TEST_F(IdleModesTest, DpdWakeupIsSecondsFromFlash) {
  // 1024 MB at 48 MB/s ~ 21 s (the paper's "several seconds of delay").
  EXPECT_NEAR(find("Deep Power Down").wakeup_seconds, 1024.0 / 48.0, 0.01);
  EXPECT_LT(find("MECC").wakeup_seconds, 1e-6);
}

TEST_F(IdleModesTest, MeccPowerMatchesSlowSelfRefresh) {
  EXPECT_DOUBLE_EQ(find("MECC").power_mw, pm_.idle_power(1.0).total_mw());
}

TEST_F(IdleModesTest, PasrFractionParameterized) {
  IdleModeParams p;
  p.pasr_retained_fraction = 0.5;
  const auto opts = idle_mode_options(pm_, 1024.0, p);
  bool found = false;
  for (const auto& o : opts) {
    if (o.name.rfind("PASR", 0) == 0) {
      EXPECT_DOUBLE_EQ(o.usable_capacity_fraction, 0.5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace mecc::power
