#include "power/power_model.h"

#include <gtest/gtest.h>

namespace mecc::power {
namespace {

class PowerModelTest : public ::testing::Test {
 protected:
  PowerModel pm_;
};

TEST_F(PowerModelTest, ReadEnergyNearPaper12nJ) {
  // Paper S IV-C: "reading a line from memory requires 12 nJ". Our burst
  // energy plus the amortized half of an ACT/PRE pair should land close.
  const double per_read = pm_.energy_read_nj() + pm_.energy_act_pre_nj() / 2;
  EXPECT_NEAR(per_read, 12.0, 4.0);
}

TEST_F(PowerModelTest, EventEnergiesPositiveAndOrdered) {
  EXPECT_GT(pm_.energy_act_pre_nj(), 0.0);
  EXPECT_GT(pm_.energy_read_nj(), 0.0);
  EXPECT_GT(pm_.energy_refresh_cmd_nj(), 0.0);
  EXPECT_DOUBLE_EQ(pm_.energy_read_nj(), pm_.energy_write_nj());
}

TEST_F(PowerModelTest, BackgroundPowerOrdering) {
  using dram::PowerState;
  // Deeper states burn less: SR < PD(pre) < PD(act) < standby(pre) <
  // standby(act).
  const double act = pm_.background_power_mw(PowerState::kActiveStandby);
  const double pre = pm_.background_power_mw(PowerState::kPrechargeStandby);
  const double apd = pm_.background_power_mw(PowerState::kActivePowerDown);
  const double ppd = pm_.background_power_mw(PowerState::kPrechargePowerDown);
  EXPECT_GT(act, pre);
  EXPECT_GT(pre, apd);
  EXPECT_GT(apd, ppd);
}

TEST_F(PowerModelTest, IdlePowerAnchorIsVddTimesIdd8) {
  // At the 64 ms period, total idle power equals the Table IV self-
  // refresh current times VDD.
  const IdlePower p = pm_.idle_power(0.064);
  EXPECT_NEAR(p.total_mw(), 1.7 * 1.3, 1e-9);
}

TEST_F(PowerModelTest, RefreshShareCalibratedToFig8) {
  // Refresh is just under half the idle power at 64 ms.
  const IdlePower p = pm_.idle_power(0.064);
  EXPECT_NEAR(p.refresh_mw / p.total_mw(), 0.46, 1e-9);
}

TEST_F(PowerModelTest, RefreshPowerScales16xAt1s) {
  // Fig. 8 (left): refresh power drops 16x when the period goes
  // 64 ms -> 1 s.
  const IdlePower base = pm_.idle_power(0.064);
  const IdlePower slow = pm_.idle_power(1.0);
  EXPECT_NEAR(base.refresh_mw / slow.refresh_mw, 1.0 / 0.064, 1e-6);
  EXPECT_DOUBLE_EQ(base.background_mw, slow.background_mw);
}

TEST_F(PowerModelTest, TotalIdlePowerRoughlyHalvesAt1s) {
  // Fig. 8 (right) / S V-B: "overall power reduction is about 43%",
  // i.e. idle power drops to ~0.57x -> "almost 2X" reduction.
  const IdlePower base = pm_.idle_power(0.064);
  const IdlePower slow = pm_.idle_power(1.0);
  const double reduction = 1.0 - slow.total_mw() / base.total_mw();
  EXPECT_NEAR(reduction, 0.43, 0.01);
}

TEST_F(PowerModelTest, RefreshOpsScaleWithPeriod) {
  // Fig. 8 text: refresh operations reduced by 16x in idle mode.
  const double base_ops = pm_.refresh_ops_per_second(0.064);
  const double slow_ops = pm_.refresh_ops_per_second(1.0);
  EXPECT_NEAR(base_ops / slow_ops, 1.0 / 0.064, 1e-9);
  // 8192 commands per 64 ms window.
  EXPECT_NEAR(base_ops, 8192.0 / 0.064, 1.0);
}

TEST_F(PowerModelTest, ActiveEnergyAddsUp) {
  dram::ActivityCounters c;
  c.activates = 100;
  c.reads = 1000;
  c.writes = 500;
  c.refreshes = 10;
  c.state_cycles[static_cast<std::size_t>(
      dram::PowerState::kPrechargeStandby)] = 200000;  // 1 ms @ 200 MHz
  const ActiveEnergy e = pm_.active_energy(c);
  EXPECT_NEAR(e.seconds, 1e-3, 1e-9);
  EXPECT_NEAR(e.background_mj,
              pm_.background_power_mw(dram::PowerState::kPrechargeStandby) *
                  1e-3,
              1e-9);
  EXPECT_NEAR(e.read_mj, 1000 * pm_.energy_read_nj() * 1e-6, 1e-9);
  EXPECT_GT(e.total_mj(), e.background_mj);
  EXPECT_NEAR(e.average_power_mw(), e.total_mj() / 1e-3, 1e-9);
}

TEST_F(PowerModelTest, EmptyCountersZeroEnergy) {
  const ActiveEnergy e = pm_.active_energy(dram::ActivityCounters{});
  EXPECT_DOUBLE_EQ(e.total_mj(), 0.0);
  EXPECT_DOUBLE_EQ(e.average_power_mw(), 0.0);
}

TEST_F(PowerModelTest, IdleVsActivePowerGap) {
  // Sanity for Fig. 1 / S V-D: even a mostly-precharge-standby active
  // memory burns an order of magnitude more than self-refresh idle.
  const double idle = pm_.idle_power(0.064).total_mw();
  const double standby =
      pm_.background_power_mw(dram::PowerState::kPrechargeStandby);
  EXPECT_GT(standby / idle, 5.0);
}

}  // namespace
}  // namespace mecc::power
