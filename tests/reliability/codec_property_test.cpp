// Property tests for the fault-injection + codec integration: the
// contracts the reliability pipeline (memory_image, measure_line_failures,
// Table I's Monte-Carlo cross-check) depends on, exercised with seeded —
// hence reproducible — random data and error patterns.
//
//  * Any burden of <= t errors decodes back to the original data.
//  * t+1 errors never pass as kClean; when the decoder does return data
//    it behaves consistently: either flagged kUncorrectable, or a
//    miscorrection whose re-encoding is a valid codeword within distance
//    t of the received word (the decoder landed on a wrong-but-nearby
//    codeword, which is the only failure mode bounded-distance decoding
//    permits).
//  * Decoding is a pure function: the same corrupted word decodes
//    identically every time.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "ecc/bch.h"
#include "ecc/secded.h"
#include "reliability/fault_injection.h"

namespace mecc::reliability {
namespace {

using ecc::DecodeResult;
using ecc::DecodeStatus;

BitVec random_data(std::size_t n, Rng& rng) {
  BitVec d(n);
  for (std::size_t i = 0; i < n; ++i) d.set(i, rng.chance(0.5));
  return d;
}

std::size_t hamming_distance(const BitVec& a, const BitVec& b) {
  return (a ^ b).popcount();
}

// The codec zoo the pipeline uses: line-granularity SECDED and the full
// BCH strength ladder, plus the (72,64) word code.
std::vector<std::unique_ptr<ecc::Code>> all_codes() {
  std::vector<std::unique_ptr<ecc::Code>> codes;
  codes.push_back(std::make_unique<ecc::Secded>(64));
  codes.push_back(std::make_unique<ecc::Secded>(512));
  for (std::size_t t = 1; t <= 6; ++t) {
    codes.push_back(std::make_unique<ecc::Bch>(10, t, 512));
  }
  return codes;
}

TEST(CodecProperty, UpToTErrorsAlwaysDecodeToOriginal) {
  for (const auto& code : all_codes()) {
    const std::size_t t = code->correct_capability();
    Rng rng(0xec0de + t);
    FaultInjector fi(0xfa017 + code->codeword_bits());
    for (int trial = 0; trial < 40; ++trial) {
      const BitVec data = random_data(code->data_bits(), rng);
      for (std::size_t nerr = 0; nerr <= t; ++nerr) {
        BitVec cw = code->encode(data);
        fi.inject_exact(cw, nerr);
        const DecodeResult r = code->decode(cw);
        ASSERT_EQ(r.data, data)
            << code->name() << " failed at " << nerr << " errors";
        if (nerr == 0) {
          EXPECT_EQ(r.status, DecodeStatus::kClean);
        } else {
          EXPECT_EQ(r.status, DecodeStatus::kCorrected);
          EXPECT_EQ(r.corrected_bits, nerr);
        }
      }
    }
  }
}

TEST(CodecProperty, BeyondTNeverPassesAsClean) {
  for (const auto& code : all_codes()) {
    const std::size_t t = code->correct_capability();
    Rng rng(0xbadc0 + t);
    FaultInjector fi(0x5eed + code->parity_bits());
    for (int trial = 0; trial < 40; ++trial) {
      const BitVec data = random_data(code->data_bits(), rng);
      BitVec cw = code->encode(data);
      fi.inject_exact(cw, t + 1);
      const DecodeResult r = code->decode(cw);
      EXPECT_NE(r.status, DecodeStatus::kClean) << code->name();
      if (r.status == DecodeStatus::kCorrected) {
        // Bounded-distance decoding: a t+1 pattern may land inside the
        // radius-t ball of a *different* codeword. Then the result must
        // actually be that codeword: re-encoding the returned data gives
        // a word within distance t of what the decoder saw.
        const BitVec reencoded = code->encode(r.data);
        EXPECT_LE(hamming_distance(reencoded, cw), t)
            << code->name() << ": miscorrection left the radius-t ball";
        EXPECT_NE(r.data, data);
      }
    }
  }
}

TEST(CodecProperty, SecdedDoubleErrorsAreAlwaysDetected) {
  // SEC-DED is stronger than generic bounded-distance at t+1: the extra
  // overall parity bit makes every 2-bit pattern land on kUncorrectable,
  // never a miscorrection. This is the property that lets the weak mode
  // crash-stop instead of silently corrupting (paper S III-C).
  for (std::size_t data_bits : {64u, 512u}) {
    const ecc::Secded code(data_bits);
    Rng rng(0xd0b1e + data_bits);
    FaultInjector fi(0x2f115 + data_bits);
    for (int trial = 0; trial < 60; ++trial) {
      BitVec cw = code.encode(random_data(data_bits, rng));
      fi.inject_exact(cw, 2);
      EXPECT_EQ(code.decode(cw).status, DecodeStatus::kUncorrectable);
    }
  }
}

TEST(CodecProperty, DecodeIsDeterministic) {
  for (const auto& code : all_codes()) {
    Rng rng(0x7e57);
    FaultInjector fi(0x7e58);
    for (int trial = 0; trial < 10; ++trial) {
      BitVec cw = code->encode(random_data(code->data_bits(), rng));
      fi.inject_exact(cw, code->correct_capability() + 1);
      const DecodeResult a = code->decode(cw);
      const DecodeResult b = code->decode(cw);
      EXPECT_EQ(a.status, b.status);
      EXPECT_EQ(a.data, b.data);
      EXPECT_EQ(a.corrected_bits, b.corrected_bits);
    }
  }
}

TEST(CodecProperty, InjectorSeedsAreReproducible) {
  // Same seed -> identical flip pattern; different seed -> (almost
  // surely) different pattern. The Monte-Carlo harness and the idle
  // reliability bench both rely on this for run-to-run stability.
  BitVec a(512);
  BitVec b(512);
  BitVec c(512);
  FaultInjector f1(123);
  FaultInjector f2(123);
  FaultInjector f3(124);
  const std::size_t na = f1.inject(a, 0.02);
  const std::size_t nb = f2.inject(b, 0.02);
  (void)f3.inject(c, 0.02);
  EXPECT_EQ(na, nb);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(CodecProperty, MonteCarloMatchesDirectTally) {
  // measure_line_failures is itself deterministic under a fixed seed and
  // internally consistent: failures = miscorrections + detected, and the
  // same call twice gives bit-identical tallies.
  const ecc::Bch code(10, 2, 512);
  const auto r1 = measure_line_failures(code, 5e-3, 500, 42);
  const auto r2 = measure_line_failures(code, 5e-3, 500, 42);
  EXPECT_EQ(r1.failures, r2.failures);
  EXPECT_EQ(r1.miscorrections, r2.miscorrections);
  EXPECT_EQ(r1.detected, r2.detected);
  EXPECT_EQ(r1.total_injected_bits, r2.total_injected_bits);
  EXPECT_EQ(r1.failures, r1.miscorrections + r1.detected);
  EXPECT_EQ(r1.trials, 500u);
}

}  // namespace
}  // namespace mecc::reliability
