#include "reliability/failure_analysis.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mecc::reliability {
namespace {

constexpr double kPaperBer = 3.16227766016838e-5;  // 10^-4.5

TEST(BinomialPmf, SumsToOne) {
  double sum = 0.0;
  for (std::size_t k = 0; k <= 20; ++k) sum += binomial_pmf(20, k, 0.3);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(BinomialPmf, EdgeCases) {
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 11, 0.5), 0.0);
}

TEST(BinomialPmf, MatchesClosedFormSmallCase)  {
  // Binomial(4, 0.5): pmf(2) = 6/16.
  EXPECT_NEAR(binomial_pmf(4, 2, 0.5), 6.0 / 16.0, 1e-12);
}

// Paper Table I, line failure column (64 B line + ECC space = 576 bits,
// BER = 10^-4.5). Values as printed in the paper.
struct Table1Row {
  std::size_t t;
  double line_failure;
  double system_failure;
};

class Table1 : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1, LineFailureMatchesPaper) {
  const auto row = GetParam();
  const double p =
      line_failure_probability(kTable1LineBits, row.t, kPaperBer);
  // Match within 15% relative (the paper prints 2 significant digits).
  EXPECT_NEAR(p / row.line_failure, 1.0, 0.15)
      << "ECC-" << row.t << ": got " << p << ", paper " << row.line_failure;
}

TEST_P(Table1, SystemFailureMatchesPaper) {
  const auto row = GetParam();
  const double pl =
      line_failure_probability(kTable1LineBits, row.t, kPaperBer);
  const double ps = system_failure_probability(pl, kTable1NumLines);
  if (row.system_failure >= 1.0) {
    EXPECT_GT(ps, 0.999);
  } else {
    EXPECT_NEAR(ps / row.system_failure, 1.0, 0.20)
        << "ECC-" << row.t << ": got " << ps << ", paper "
        << row.system_failure;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperValues, Table1,
    ::testing::Values(Table1Row{0, 1.8e-2, 1.0}, Table1Row{1, 1.6e-4, 1.0},
                      Table1Row{2, 9.8e-7, 1.0},
                      Table1Row{3, 4.5e-9, 7.2e-2},
                      Table1Row{4, 1.6e-11, 2.7e-4},
                      Table1Row{5, 4.9e-14, 8.1e-7},
                      Table1Row{6, 1.2e-16, 1.8e-9}));

TEST(LineFailure, MonotonicInT) {
  double prev = 1.0;
  for (std::size_t t = 0; t <= 8; ++t) {
    const double p = line_failure_probability(576, t, kPaperBer);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(LineFailure, MonotonicInBer) {
  double prev = 0.0;
  for (double ber = 1e-7; ber < 1e-2; ber *= 10.0) {
    const double p = line_failure_probability(576, 3, ber);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(LineFailure, DegenerateBers) {
  EXPECT_DOUBLE_EQ(line_failure_probability(576, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(line_failure_probability(576, 3, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(line_failure_probability(4, 4, 1.0), 0.0);
}

TEST(SystemFailure, SmallProbabilityScalesLinearly) {
  // For tiny p_line, P(system) ~ N * p_line.
  const double pl = 1e-12;
  const double ps = system_failure_probability(pl, 1u << 24);
  EXPECT_NEAR(ps, pl * (1u << 24), ps * 1e-4);
}

TEST(SystemFailure, Saturates) {
  EXPECT_DOUBLE_EQ(system_failure_probability(1.0, 10), 1.0);
  EXPECT_DOUBLE_EQ(system_failure_probability(0.0, 10), 0.0);
  EXPECT_NEAR(system_failure_probability(0.5, 1u << 24), 1.0, 1e-12);
}

TEST(RequiredEccStrength, PaperConclusion) {
  // Paper S II-C: "To achieve our target system failure probability of
  // 1 in a million, we will need to provision the system with ECC-5",
  // plus one level of soft-error margin -> ECC-6.
  const std::size_t t = required_ecc_strength(kTable1LineBits,
                                              kTable1NumLines, kPaperBer,
                                              1e-6);
  EXPECT_EQ(t, 5u);
  EXPECT_EQ(t + 1, 6u);  // the provisioned strength
}

TEST(RequiredEccStrength, StricterTargetNeedsMore) {
  const std::size_t loose = required_ecc_strength(576, 1u << 24, kPaperBer,
                                                  1e-2);
  const std::size_t tight = required_ecc_strength(576, 1u << 24, kPaperBer,
                                                  1e-12);
  EXPECT_LT(loose, tight);
}

TEST(RequiredEccStrength, RejectsBadTarget) {
  EXPECT_THROW((void)required_ecc_strength(576, 1, 1e-5, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace mecc::reliability
