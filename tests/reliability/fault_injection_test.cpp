#include "reliability/fault_injection.h"

#include <gtest/gtest.h>

#include "ecc/bch.h"
#include "ecc/secded.h"
#include "reliability/failure_analysis.h"

namespace mecc::reliability {
namespace {

TEST(FaultInjector, ExactCountFlipsExactly) {
  FaultInjector fi(1);
  BitVec w(512);
  fi.inject_exact(w, 7);
  EXPECT_EQ(w.popcount(), 7u);
}

TEST(FaultInjector, ZeroBerFlipsNothing) {
  FaultInjector fi(2);
  BitVec w(512);
  EXPECT_EQ(fi.inject(w, 0.0), 0u);
  EXPECT_FALSE(w.any());
}

TEST(FaultInjector, BerOneFlipsEveryBit) {
  FaultInjector fi(11);
  BitVec w(523);
  EXPECT_EQ(fi.inject(w, 1.0), w.size());
  EXPECT_EQ(w.popcount(), w.size());
  // And back again: a second full-rate pass returns to all-clean.
  EXPECT_EQ(fi.inject(w, 1.0), w.size());
  EXPECT_FALSE(w.any());
}

TEST(FaultInjector, ExactCountSaturatesAtWordSize) {
  // Asking for more flips than the word has bits cannot be satisfied by
  // rejection sampling; the injector saturates by flipping every bit
  // exactly once instead of spinning forever.
  for (const std::size_t count : {std::size_t{512}, std::size_t{513},
                                  std::size_t{100'000}}) {
    FaultInjector fi(13);
    BitVec w(512);
    fi.inject_exact(w, count);
    EXPECT_EQ(w.popcount(), w.size()) << "count=" << count;
  }
}

TEST(FaultInjector, SaturatedExactCountIsSeedIndependent) {
  // The saturation path consumes no randomness: any two injectors agree.
  FaultInjector a(1);
  FaultInjector b(999);
  BitVec wa(64);
  BitVec wb(64);
  a.inject_exact(wa, 1000);
  b.inject_exact(wb, 1000);
  EXPECT_EQ(wa, wb);
}

TEST(FaultInjector, ExactZeroFlipsNothing) {
  FaultInjector fi(17);
  BitVec w(128);
  fi.inject_exact(w, 0);
  EXPECT_FALSE(w.any());
}

TEST(FaultInjector, InjectionRateMatchesBer) {
  FaultInjector fi(3);
  const double ber = 0.01;
  std::size_t total = 0;
  const int kTrials = 500;
  for (int i = 0; i < kTrials; ++i) {
    BitVec w(1024);
    total += fi.inject(w, ber);
  }
  const double avg = static_cast<double>(total) / kTrials;
  EXPECT_NEAR(avg, 1024 * ber, 1.0);  // ~10.24 flips expected
}

TEST(FaultInjector, Deterministic) {
  FaultInjector a(42);
  FaultInjector b(42);
  BitVec wa(256);
  BitVec wb(256);
  (void)a.inject(wa, 0.05);
  (void)b.inject(wb, 0.05);
  EXPECT_EQ(wa, wb);
}

TEST(MonteCarlo, SecdedNeverFailsWithAtMostOneError) {
  // At a BER where multi-bit errors are vanishingly rare, SECDED must
  // show (almost) no failures.
  const ecc::Secded code(64);
  const auto r = measure_line_failures(code, 1e-5, 20000, 7);
  EXPECT_EQ(r.failures, 0u);
}

TEST(MonteCarlo, EmpiricalRateMatchesAnalyticAtHighBer) {
  // Elevated BER makes the failure rate measurable: compare Monte-Carlo
  // against the binomial tail analytics on the same codeword length.
  const ecc::Secded code(64);  // 72-bit codeword, corrects 1
  const double ber = 5e-3;
  const std::size_t trials = 40000;
  const auto mc = measure_line_failures(code, ber, trials, 11);
  const double analytic = line_failure_probability(72, 1, ber);
  const double empirical = mc.failure_rate();
  // ~5.8e-2 expected; 3-sigma band for 40 k trials is ~ +-0.35e-2.
  EXPECT_NEAR(empirical, analytic, 4e-3);
}

TEST(MonteCarlo, Ecc6EmpiricalRateMatchesAnalytic) {
  const ecc::Bch code(10, 6, 512);  // 572-bit codeword, corrects 6
  const double ber = 8e-3;          // E[errors] ~ 4.6, P(>6) ~ 0.17
  const std::size_t trials = 2000;
  const auto mc = measure_line_failures(code, ber, trials, 13);
  const double analytic = line_failure_probability(572, 6, ber);
  EXPECT_NEAR(mc.failure_rate(), analytic, 0.03);
}

TEST(MonteCarlo, StrongerCodeFailsLess) {
  const double ber = 6e-3;
  const ecc::Bch weak(10, 2, 512);
  const ecc::Bch strong(10, 6, 512);
  const auto rw = measure_line_failures(weak, ber, 1500, 17);
  const auto rs = measure_line_failures(strong, ber, 1500, 17);
  EXPECT_GT(rw.failure_rate(), rs.failure_rate());
}

TEST(MonteCarlo, CorrectedBitsTrackInjectedBits) {
  // Below the correction capability every injected bit gets corrected.
  const ecc::Bch code(10, 6, 512);
  const auto r = measure_line_failures(code, 5e-4, 3000, 19);
  EXPECT_EQ(r.failures, 0u);  // E[errors] ~ 0.29, P(>6) ~ 2e-10
  EXPECT_EQ(r.total_corrected_bits, r.total_injected_bits);
}

}  // namespace
}  // namespace mecc::reliability
