#include <gtest/gtest.h>

#include "reliability/failure_analysis.h"
#include "reliability/retention_model.h"

namespace mecc::reliability {
namespace {

TEST(MaxTolerableBer, InverseOfRequiredStrength) {
  // For every strength t, the BER returned must (a) meet the target at
  // strength t and (b) exceed what t-1 could handle.
  for (std::size_t t = 1; t <= 6; ++t) {
    const double ber =
        max_tolerable_ber(kTable1LineBits, t, kTable1NumLines, 1e-6);
    ASSERT_GT(ber, 0.0);
    const double ps = system_failure_probability(
        line_failure_probability(kTable1LineBits, t, ber), kTable1NumLines);
    EXPECT_LT(ps, 1e-6) << "t=" << t;
    // Slightly above the returned BER the target must be violated
    // (tightness of the bisection).
    const double ps_above = system_failure_probability(
        line_failure_probability(kTable1LineBits, t, ber * 1.01),
        kTable1NumLines);
    EXPECT_GT(ps_above, 1e-6) << "t=" << t;
  }
}

TEST(MaxTolerableBer, MonotonicInStrength) {
  double prev = 0.0;
  for (std::size_t t = 1; t <= 7; ++t) {
    const double ber =
        max_tolerable_ber(kTable1LineBits, t, kTable1NumLines, 1e-6);
    EXPECT_GT(ber, prev);
    prev = ber;
  }
}

TEST(MaxTolerableBer, PaperOperatingPoint) {
  // ECC-6 with the +1 soft-error margin leaves 5 bits for retention
  // errors; the tolerable BER must cover the paper's 10^-4.5 and the
  // implied refresh period must be ~1 s on the Fig. 2 curve.
  const double ber =
      max_tolerable_ber(kTable1LineBits, 5, kTable1NumLines, 1e-6);
  EXPECT_GT(ber, 3.16e-5);
  const RetentionModel retention;
  const double period = retention.retention_for_ber(ber);
  EXPECT_GT(period, 0.9);
  EXPECT_LT(period, 1.4);
}

TEST(MaxTolerableBer, ZeroStrengthStillHasATinyBudget) {
  // Even uncorrected lines meet a loose enough target at some BER.
  const double ber = max_tolerable_ber(576, 0, 1, 0.5);
  EXPECT_GT(ber, 0.0);
}

TEST(MaxTolerableBer, ImpossibleTargetReturnsZero) {
  // 2^24 lines, no correction, target 1e-6: needs p_line < 6e-14, i.e.
  // BER below ~1e-16 - under the bisection floor, reported as 0.
  EXPECT_EQ(max_tolerable_ber(576, 0, kTable1NumLines, 1e-6), 0.0);
}

TEST(MaxTolerableBer, RejectsBadTarget) {
  EXPECT_THROW((void)max_tolerable_ber(576, 3, 1, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mecc::reliability
