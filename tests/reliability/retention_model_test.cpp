#include "reliability/retention_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mecc::reliability {
namespace {

TEST(RetentionModel, PaperAnchorPoints) {
  const RetentionModel m;
  // Fig. 2 anchors: ~1e-9 at 64 ms, 10^-4.5 at 1 s.
  EXPECT_NEAR(std::log10(m.bit_failure_probability(0.064)), -9.0, 1e-9);
  EXPECT_NEAR(std::log10(m.bit_failure_probability(1.0)), -4.5, 1e-9);
}

TEST(RetentionModel, MonotonicInRetentionTime) {
  const RetentionModel m;
  double prev = 0.0;
  for (double t = 0.01; t <= 100.0; t *= 1.5) {
    const double p = m.bit_failure_probability(t);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(RetentionModel, ClampedToProbabilityRange) {
  const RetentionModel m;
  EXPECT_EQ(m.bit_failure_probability(0.0), 0.0);
  EXPECT_EQ(m.bit_failure_probability(-1.0), 0.0);
  EXPECT_LE(m.bit_failure_probability(1e9), 1.0);
  EXPECT_GE(m.bit_failure_probability(1e-9), 0.0);
}

TEST(RetentionModel, InverseRoundTrip) {
  const RetentionModel m;
  for (double ber : {1e-8, 1e-6, 3.16e-5, 1e-4}) {
    const double t = m.retention_for_ber(ber);
    EXPECT_NEAR(m.bit_failure_probability(t), ber, ber * 1e-6);
  }
}

TEST(RetentionModel, DefaultBerMatchesPaperConstant) {
  // 10^-4.5 as used throughout the paper's evaluation.
  EXPECT_NEAR(RetentionModel::kDefaultBerAt1s, std::pow(10.0, -4.5), 1e-12);
}

TEST(RetentionModel, ExpectedFailuresIn1GbAt1s) {
  // Paper S II-B: "approximately 32K bits to fail in a 1Gb array" at 1 s.
  const RetentionModel m;
  const double bits = 1024.0 * 1024.0 * 1024.0;
  const double expected_failures = bits * m.bit_failure_probability(1.0);
  EXPECT_NEAR(expected_failures, 32.0 * 1024.0, 2500.0);
}

TEST(RetentionModel, SamplingMatchesCdf) {
  const RetentionModel m;
  Rng rng(123);
  const int kTrials = 200000;
  int below_1s = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (m.sample_retention_seconds(rng) < 1.0) ++below_1s;
  }
  const double frac = static_cast<double>(below_1s) / kTrials;
  // P(T < 1 s) = BER(1 s) = 3.16e-5; with 2e5 trials expect ~6 hits.
  EXPECT_NEAR(frac, 3.16e-5, 5e-5);
}

TEST(RetentionModel, RejectsInvalidAnchors) {
  EXPECT_THROW(RetentionModel(1e-4, 1e-9), std::invalid_argument);
  EXPECT_THROW(RetentionModel(0.0, 1e-4), std::invalid_argument);
  EXPECT_THROW(RetentionModel(1e-4, 1e-4), std::invalid_argument);
}

TEST(RetentionModel, CustomAnchorsRespected) {
  const RetentionModel m(1e-8, 1e-3);
  EXPECT_NEAR(std::log10(m.bit_failure_probability(0.064)), -8.0, 1e-9);
  EXPECT_NEAR(std::log10(m.bit_failure_probability(1.0)), -3.0, 1e-9);
}

}  // namespace
}  // namespace mecc::reliability
