#include "sim/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mecc::sim {
namespace {

TEST(Csv, WritesHeaderAndRows) {
  RunResult r;
  r.benchmark = "astar";
  r.policy = EccPolicy::kMecc;
  r.instructions = 1000;
  r.ipc = 0.75;
  r.downgrades = 42;
  const std::string path = ::testing::TempDir() + "mecc_csv_test.csv";
  write_results_csv(path, {r, r});

  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, results_csv_header());
  std::string row;
  int rows = 0;
  while (std::getline(in, row)) {
    EXPECT_NE(row.find("astar,MECC,1000"), std::string::npos);
    ++rows;
  }
  EXPECT_EQ(rows, 2);
  std::remove(path.c_str());
}

TEST(Csv, HeaderColumnCountMatchesRows) {
  RunResult r;
  r.benchmark = "lbm";
  const std::string path = ::testing::TempDir() + "mecc_csv_test2.csv";
  write_results_csv(path, {r});
  std::ifstream in(path);
  std::string header;
  std::string row;
  std::getline(in, header);
  std::getline(in, row);
  const auto count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count(header), count(row));
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(write_results_csv("/nonexistent/dir/out.csv", {}),
               std::runtime_error);
}

}  // namespace
}  // namespace mecc::sim
