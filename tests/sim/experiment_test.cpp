#include "sim/experiment.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mecc::sim {
namespace {

TEST(Geomean, KnownValues) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(geomean({1.0, 1.0, 8.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

// Regression: log(0) = -inf / log(<0) = NaN used to poison the whole
// "ALL/class" bar when normalized() fed a 0 through (zero base).
TEST(Geomean, SkipsNonPositiveValues) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 0.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geomean({4.0, -3.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geomean({0.0}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({0.0, -1.0}), 0.0);
  EXPECT_FALSE(std::isnan(geomean({normalized(5.0, 0.0), 2.0})));
  EXPECT_DOUBLE_EQ(geomean({normalized(5.0, 0.0), 2.0}), 2.0);
}

TEST(Mean, KnownValues) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Normalized, HandlesZeroBase) {
  EXPECT_DOUBLE_EQ(normalized(5.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(normalized(5.0, 0.0), 0.0);
}

TEST(AnalyzeIdle, ThreeSchemesWithPaperShape) {
  const power::PowerModel pm;
  const auto reports = analyze_idle(pm);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].scheme, "Baseline");
  EXPECT_EQ(reports[1].scheme, "MECC");
  EXPECT_EQ(reports[2].scheme, "ECC-6");
  // Both MECC and ECC-6 cut refresh ops ~16x.
  EXPECT_NEAR(reports[0].refresh_ops_per_s / reports[1].refresh_ops_per_s,
              15.6, 0.1);
  EXPECT_DOUBLE_EQ(reports[1].refresh_ops_per_s,
                   reports[2].refresh_ops_per_s);
  // Idle power drops to ~0.57x (the paper's "about 43%" reduction).
  EXPECT_NEAR(reports[1].power.total_mw() / reports[0].power.total_mw(),
              0.57, 0.01);
}

TEST(ComposeEnergy, NinetyFivePercentIdleMix) {
  // 100 mW active for 1 s + idle at 2 mW, 95% idle -> 19 s idle.
  const EnergyMix m = compose_energy(100.0, 1.0, 2.0, 0.95);
  EXPECT_NEAR(m.idle_seconds, 19.0, 1e-9);
  EXPECT_NEAR(m.active_mj(), 100.0, 1e-9);
  EXPECT_NEAR(m.idle_mj(), 38.0, 1e-9);
  EXPECT_NEAR(m.total_mj(), 138.0, 1e-9);
}

TEST(ComposeEnergy, IdleEnergyIsSignificantShareForTypicalNumbers) {
  // Fig. 10: idle energy is roughly one-third of total for the baseline.
  // With active ~ 60 mW (suite average) and idle 2.2 mW at 95% idle:
  const EnergyMix m = compose_energy(60.0, 1.0, 2.21, 0.95);
  const double idle_share = m.idle_mj() / m.total_mj();
  EXPECT_GT(idle_share, 0.25);
  EXPECT_LT(idle_share, 0.5);
}

TEST(RunSuite, CoversAll28Benchmarks) {
  SystemConfig c;
  c.instructions = 50'000;  // tiny smoke run
  const auto results = run_suite(EccPolicy::kNoEcc, c);
  ASSERT_EQ(results.size(), 28u);
  for (const auto& r : results) {
    EXPECT_GT(r.ipc, 0.0) << r.benchmark;
    // The 2-wide core can overshoot the target by one instruction.
    EXPECT_GE(r.instructions, 50'000u);
    EXPECT_LE(r.instructions, 50'002u);
  }
}

}  // namespace
}  // namespace mecc::sim
