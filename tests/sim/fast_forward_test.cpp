// Fast-forward equivalence suite (docs/PERFORMANCE.md): the event-driven
// skip engine (SystemConfig::fast_forward = true, the default) must be
// bit-identical to the per-cycle reference loop for every simulated
// field, across every ECC policy, across active/idle lifecycles, with
// the fault campaign attached, and with SMD enabled. Plus property tests
// that the component next_event bounds never overshoot a real event and
// that InOrderCore::advance_gap matches the per-cycle tick sequence.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/rng.h"
#include "cpu/core.h"
#include "memctrl/controller.h"
#include "sim/experiment.h"
#include "sim/system.h"
#include "trace/benchmarks.h"
#include "trace/trace_source.h"

namespace mecc::sim {
namespace {

SystemConfig base_config(EccPolicy policy) {
  SystemConfig c;
  c.policy = policy;
  c.instructions = 300'000;
  c.seed = 7;
  return c;
}

RunResult run_once(const trace::BenchmarkProfile& profile, SystemConfig cfg,
                   bool fast_forward) {
  cfg.fast_forward = fast_forward;
  System sys(profile, cfg);
  return sys.run();
}

void expect_idle_reports_equal(const IdleReport& a, const IdleReport& b) {
  EXPECT_EQ(a.lines_upgraded, b.lines_upgraded);
  EXPECT_EQ(a.upgrade_seconds, b.upgrade_seconds);
  EXPECT_EQ(a.idle_seconds, b.idle_seconds);
  EXPECT_EQ(a.idle_energy_mj, b.idle_energy_mj);
  EXPECT_EQ(a.refresh_pulses, b.refresh_pulses);
  EXPECT_EQ(a.refresh_period_s, b.refresh_period_s);
  EXPECT_EQ(a.injected_bits, b.injected_bits);
  EXPECT_EQ(a.injected_ber, b.injected_ber);
}

class FastForwardPolicy : public ::testing::TestWithParam<EccPolicy> {};

TEST_P(FastForwardPolicy, BitIdenticalToPerCycleLoop) {
  // Two memory-intensity extremes so both the mostly-idle skip path and
  // the saturated always-busy path are exercised.
  for (const char* name : {"povray", "lbm"}) {
    const auto& b = trace::benchmark(name);
    SystemConfig cfg = base_config(GetParam());
    cfg.checkpoint_insts = {100'000, 200'000};  // crossings stay per-cycle
    const RunResult on = run_once(b, cfg, true);
    const RunResult off = run_once(b, cfg, false);
    EXPECT_TRUE(same_simulated_result(on, off)) << name;
    ASSERT_EQ(on.checkpoints.size(), off.checkpoints.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, FastForwardPolicy,
                         ::testing::Values(EccPolicy::kNoEcc,
                                           EccPolicy::kSecded,
                                           EccPolicy::kEcc6,
                                           EccPolicy::kMecc),
                         [](const auto& info) {
                           switch (info.param) {
                             case EccPolicy::kNoEcc: return "NoEcc";
                             case EccPolicy::kSecded: return "Secded";
                             case EccPolicy::kEcc6: return "Ecc6";
                             case EccPolicy::kMecc: return "Mecc";
                           }
                           return "Unknown";
                         });

// Refresh scheduling policies (docs/SCHEDULING.md): the skip engine
// must stay bit-identical under per-bank refresh, DARP's out-of-order
// pull-in/postpone machinery, and SARP's subarray overlap — their
// per-bank due times and pull-in horizons are new next_event sources.
struct RefreshPolicyCase {
  const char* name;
  memctrl::RefreshGranularity granularity;
  bool darp;
  bool sarp;
  bool elastic;
};

class FastForwardRefreshPolicy
    : public ::testing::TestWithParam<RefreshPolicyCase> {};

TEST_P(FastForwardRefreshPolicy, BitIdenticalToPerCycleLoop) {
  for (const char* name : {"povray", "lbm"}) {
    const auto& b = trace::benchmark(name);
    SystemConfig cfg = base_config(EccPolicy::kNoEcc);
    cfg.controller.refresh_granularity = GetParam().granularity;
    cfg.controller.darp = GetParam().darp;
    cfg.controller.sarp = GetParam().sarp;
    cfg.controller.elastic_refresh = GetParam().elastic;
    const RunResult on = run_once(b, cfg, true);
    const RunResult off = run_once(b, cfg, false);
    EXPECT_TRUE(same_simulated_result(on, off)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, FastForwardRefreshPolicy,
    ::testing::Values(
        RefreshPolicyCase{"AllBank", memctrl::RefreshGranularity::kAllBank,
                          false, false, false},
        RefreshPolicyCase{"PerBank", memctrl::RefreshGranularity::kPerBank,
                          false, false, false},
        RefreshPolicyCase{"PerBankElastic",
                          memctrl::RefreshGranularity::kPerBank, false, false,
                          true},
        RefreshPolicyCase{"Darp", memctrl::RefreshGranularity::kPerBank, true,
                          false, false},
        RefreshPolicyCase{"DarpSarp", memctrl::RefreshGranularity::kPerBank,
                          true, true, false}),
    [](const auto& info) { return std::string(info.param.name); });

// Multi-channel x multi-rank geometry (docs/SCALING.md): the per-channel
// fast-forward fold — each channel contributing its own refresh /
// power-down / completion horizons, per-rank refresh state per
// controller — must stay bit-identical under every refresh policy.
class FastForwardGeometryRefreshPolicy
    : public ::testing::TestWithParam<RefreshPolicyCase> {};

TEST_P(FastForwardGeometryRefreshPolicy, BitIdenticalAt2x2) {
  for (const char* name : {"povray", "lbm"}) {
    const auto& b = trace::benchmark(name);
    SystemConfig cfg = base_config(EccPolicy::kNoEcc);
    cfg.geometry.channels = 2;
    cfg.geometry.ranks = 2;
    cfg.controller.refresh_granularity = GetParam().granularity;
    cfg.controller.darp = GetParam().darp;
    cfg.controller.sarp = GetParam().sarp;
    cfg.controller.elastic_refresh = GetParam().elastic;
    const RunResult on = run_once(b, cfg, true);
    const RunResult off = run_once(b, cfg, false);
    EXPECT_TRUE(same_simulated_result(on, off)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, FastForwardGeometryRefreshPolicy,
    ::testing::Values(
        RefreshPolicyCase{"AllBank", memctrl::RefreshGranularity::kAllBank,
                          false, false, false},
        RefreshPolicyCase{"PerBank", memctrl::RefreshGranularity::kPerBank,
                          false, false, false},
        RefreshPolicyCase{"PerBankElastic",
                          memctrl::RefreshGranularity::kPerBank, false, false,
                          true},
        RefreshPolicyCase{"Darp", memctrl::RefreshGranularity::kPerBank, true,
                          false, false},
        RefreshPolicyCase{"DarpSarp", memctrl::RefreshGranularity::kPerBank,
                          true, true, false}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(FastForward, GeometryInterleaveAndStreamsBitIdentical) {
  // Every interleave mode and a multi-stream contention mix at
  // 2ch x 2rank: the joint multi-core skip (per-core gap bounds folded
  // into one shared-clock advance) must match the per-cycle loop.
  for (const memctrl::Interleave mode :
       {memctrl::Interleave::kLine, memctrl::Interleave::kRow,
        memctrl::Interleave::kBankXor}) {
    for (const std::uint32_t streams : {1u, 2u, 4u}) {
      const auto& b = trace::benchmark("astar");
      SystemConfig cfg = base_config(EccPolicy::kMecc);
      cfg.geometry.channels = 2;
      cfg.geometry.ranks = 2;
      cfg.interleave = mode;
      cfg.streams = streams;
      const RunResult on = run_once(b, cfg, true);
      const RunResult off = run_once(b, cfg, false);
      EXPECT_TRUE(same_simulated_result(on, off))
          << memctrl::interleave_name(mode) << " streams=" << streams;
    }
  }
}

TEST(FastForward, ChannelParallelBitIdenticalToSerialOrder) {
  // Channel-parallel epoch ticking (thread pool inside one run) is a
  // pure implementation detail: same simulated fields as the serial
  // single-threaded order, fast-forward on or off.
  const auto& b = trace::benchmark("lbm");
  SystemConfig cfg = base_config(EccPolicy::kNoEcc);
  cfg.geometry.channels = 4;
  cfg.geometry.ranks = 2;
  cfg.streams = 4;
  const RunResult serial = run_once(b, cfg, true);
  cfg.channel_threads = 4;
  const RunResult parallel = run_once(b, cfg, true);
  EXPECT_TRUE(same_simulated_result(serial, parallel));
  cfg.fast_forward = false;
  System sys(b, cfg);
  const RunResult percycle = sys.run();
  EXPECT_TRUE(same_simulated_result(serial, percycle));
}

TEST(FastForward, PerBankLifecycleBitIdentical) {
  // Active -> self-refresh idle -> active under DARP+SARP: the idle
  // transition exercises resync_refresh's per-bank reset, and the warm
  // re-entry the per-bank due-time bounds.
  const auto& b = trace::benchmark("astar");
  SystemConfig cfg = base_config(EccPolicy::kMecc);
  cfg.controller.refresh_granularity = memctrl::RefreshGranularity::kPerBank;
  cfg.controller.darp = true;
  cfg.controller.sarp = true;
  cfg.fast_forward = true;
  System on(b, cfg);
  cfg.fast_forward = false;
  System off(b, cfg);

  for (int cycle = 0; cycle < 3; ++cycle) {
    const RunResult a = on.run_period(150'000);
    const RunResult r = off.run_period(150'000);
    EXPECT_TRUE(same_simulated_result(a, r)) << "period " << cycle;
    if (cycle == 2) break;
    const IdleReport ia = on.idle_period(0.5);
    const IdleReport ib = off.idle_period(0.5);
    expect_idle_reports_equal(ia, ib);
  }
}

TEST(FastForward, LifecycleBitIdentical) {
  // Fig. 4 lifecycle: active -> idle -> active -> idle -> active, on two
  // Systems differing only in the fast_forward flag. Every period and
  // every idle report must match exactly (the idle drain and the warm
  // re-entry both run through the skip engine).
  const auto& b = trace::benchmark("astar");
  SystemConfig cfg = base_config(EccPolicy::kMecc);
  cfg.fast_forward = true;
  System on(b, cfg);
  cfg.fast_forward = false;
  System off(b, cfg);

  for (int cycle = 0; cycle < 3; ++cycle) {
    const RunResult a = on.run_period(150'000);
    const RunResult r = off.run_period(150'000);
    EXPECT_TRUE(same_simulated_result(a, r)) << "period " << cycle;
    if (cycle == 2) break;
    const IdleReport ia = on.idle_period(0.5);
    const IdleReport ib = off.idle_period(0.5);
    expect_idle_reports_equal(ia, ib);
  }
}

TEST(FastForward, FaultCampaignBitIdentical) {
  // With the functional shadow attached and real retention errors
  // injected during the idle period, the post-wake period (DUE ladder
  // included) must still be bit-identical.
  // MECC: the only policy that sleeps at a slowed refresh period, which
  // is what triggers retention-error injection.
  const auto& b = trace::benchmark("soplex");
  SystemConfig cfg = base_config(EccPolicy::kMecc);
  cfg.instructions = 200'000;
  cfg.fault.enabled = true;
  cfg.fault.shadow_lines = 1024;
  cfg.fault.ber_override = 3e-3;  // high enough to hit the shadow set

  cfg.fast_forward = true;
  System on(b, cfg);
  cfg.fast_forward = false;
  System off(b, cfg);

  EXPECT_TRUE(same_simulated_result(on.run(), off.run()));
  const IdleReport ia = on.idle_period(1.0);
  const IdleReport ib = off.idle_period(1.0);
  expect_idle_reports_equal(ia, ib);
  EXPECT_GT(ia.injected_bits, 0u);
  EXPECT_TRUE(same_simulated_result(on.run_period(200'000),
                                    off.run_period(200'000)));
}

TEST(FastForward, SmdBitIdentical) {
  // SMD's MPKC quantum boundaries are absolute-cycle events the skip
  // engine must not jump across.
  const auto& b = trace::benchmark("omnetpp");
  SystemConfig cfg = base_config(EccPolicy::kMecc);
  cfg.mecc_use_smd = true;
  cfg.smd_quantum_cycles = 50'000;
  const RunResult on = run_once(b, cfg, true);
  const RunResult off = run_once(b, cfg, false);
  EXPECT_TRUE(same_simulated_result(on, off));
  EXPECT_GT(on.frac_downgrade_disabled, 0.0);  // SMD actually engaged
}

class ControllerNextEventProperty
    : public ::testing::TestWithParam<RefreshPolicyCase> {};

TEST_P(ControllerNextEventProperty, NeverOvershoots) {
  // Property: whenever next_event(now) returns a bound b, every tick in
  // (now, b) is a pure no-op — no counter moves — and no completion
  // becomes ready before next_completion_ready(). The bound is only
  // valid until the next external input, so it is recomputed after every
  // enqueue. Runs once per refresh policy: the per-bank due times and
  // DARP pull-in horizon are each their own bound source.
  const dram::Geometry geo;
  const dram::Timing timing;
  dram::Device dev(geo, timing);
  memctrl::ControllerConfig cfg;
  cfg.refresh_granularity = GetParam().granularity;
  cfg.darp = GetParam().darp;
  cfg.sarp = GetParam().sarp;
  cfg.elastic_refresh = GetParam().elastic;
  memctrl::Controller ctl(dev, cfg);
  Rng rng(42);

  dram::MemCycle bound = 0;  // no-op window: cycles strictly below this
  dram::MemCycle completion_bound = 0;
  std::uint64_t next_id = 1;
  std::uint64_t checked_noop_ticks = 0;

  for (dram::MemCycle now = 0; now < 60'000; ++now) {
    // Bursty traffic with long quiet stretches so refresh and power-down
    // events dominate some windows and queue activity others.
    const bool quiet = (now / 8'000) % 2 == 1;
    if (!quiet && rng.chance(0.1)) {
      const Address addr = rng.next_below(1 << 14) * kLineBytes;
      const bool accepted = rng.chance(0.6)
                                ? ctl.enqueue_read(addr, next_id++, now)
                                : ctl.enqueue_write(addr, now);
      (void)accepted;
      // External input invalidates the standing bounds.
      bound = 0;
      completion_bound = 0;
    }

    const bool expect_noop = now < bound;
    StatSet before;
    if (expect_noop) before = ctl.stats();
    ctl.tick(now);
    const auto& done = ctl.collect_completions(now);
    if (expect_noop) {
      EXPECT_EQ(before, ctl.stats()) << "tick acted before bound at " << now;
      ++checked_noop_ticks;
    }
    if (now < completion_bound) {
      EXPECT_TRUE(done.empty())
          << "completion before next_completion_ready at " << now;
    }

    const dram::MemCycle b = ctl.next_event(now);
    ASSERT_GT(b, now) << "bound must be strictly in the future";
    bound = b;
    const dram::MemCycle c = ctl.next_completion_ready();
    completion_bound = c == memctrl::kNoMemEvent ? 0 : c;
  }
  // The property actually bit on a meaningful share of the run.
  EXPECT_GT(checked_noop_ticks, 10'000u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ControllerNextEventProperty,
    ::testing::Values(
        RefreshPolicyCase{"AllBank", memctrl::RefreshGranularity::kAllBank,
                          false, false, false},
        RefreshPolicyCase{"PerBank", memctrl::RefreshGranularity::kPerBank,
                          false, false, false},
        RefreshPolicyCase{"PerBankElastic",
                          memctrl::RefreshGranularity::kPerBank, false, false,
                          true},
        RefreshPolicyCase{"Darp", memctrl::RefreshGranularity::kPerBank, true,
                          false, false},
        RefreshPolicyCase{"DarpSarp", memctrl::RefreshGranularity::kPerBank,
                          true, true, false}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(FastForward, AdvanceGapMatchesPerCycleTicks) {
  // Two cores over identical trace streams and always-accepting memory
  // callbacks: one stepped cycle by cycle, one using advance_gap
  // whenever it is in a pure gap. Retire/cycle/issue accounting must
  // match exactly at every comparison point.
  const auto& b = trace::benchmark("gcc");
  trace::GeneratorConfig gcfg;
  gcfg.seed = 11;
  trace::GeneratorSource src_a(b, gcfg);
  trace::GeneratorSource src_b(b, gcfg);

  cpu::CoreConfig ccfg;
  ccfg.base_ipc = 1.37;  // non-dyadic: exercises the Q32 quantization
  // Reads are accepted instantly and their data returns right after the
  // issuing tick (a 1-cycle memory), identically for both cores.
  std::vector<std::uint64_t> tags_a;
  std::vector<std::uint64_t> tags_b;
  auto accept_write = [](Address) { return true; };
  cpu::InOrderCore per_cycle(
      ccfg, src_a,
      [&tags_a](Address, std::uint64_t tag) {
        tags_a.push_back(tag);
        return true;
      },
      accept_write);
  cpu::InOrderCore bulk(
      ccfg, src_b,
      [&tags_b](Address, std::uint64_t tag) {
        tags_b.push_back(tag);
        return true;
      },
      accept_write);

  Cycle bulk_cycles = 0;
  const Cycle kTotal = 200'000;
  for (Cycle now = 0; now < kTotal; ++now) {
    per_cycle.tick();
    for (const std::uint64_t tag : tags_a) per_cycle.on_read_data(tag);
    tags_a.clear();
  }
  while (bulk_cycles < kTotal) {
    if (bulk.in_pure_gap()) {
      const Cycle advanced = bulk.advance_gap(
          kTotal - bulk_cycles, std::numeric_limits<InstCount>::max());
      bulk_cycles += advanced;
      if (advanced > 0) continue;
    }
    bulk.tick();
    for (const std::uint64_t tag : tags_b) bulk.on_read_data(tag);
    tags_b.clear();
    ++bulk_cycles;
  }

  EXPECT_EQ(per_cycle.retired(), bulk.retired());
  EXPECT_EQ(per_cycle.cycles(), bulk.cycles());
  EXPECT_EQ(per_cycle.stall_cycles(), bulk.stall_cycles());
  EXPECT_EQ(per_cycle.reads_issued(), bulk.reads_issued());
  EXPECT_EQ(per_cycle.writes_issued(), bulk.writes_issued());
  EXPECT_GT(bulk.retired(), 100'000u);  // the comparison covered real work
}

}  // namespace
}  // namespace mecc::sim
