// End-to-end tests of the fault-injection campaign plumbing in
// sim::System: shadow attachment, errors.* stats, the DUE degradation
// ladder, and the campaign's determinism / timing-neutrality contracts.
#include <gtest/gtest.h>

#include "reliability/retention_model.h"
#include "sim/system.h"
#include "trace/benchmarks.h"

namespace mecc::sim {
namespace {

SystemConfig campaign_config(EccPolicy policy = EccPolicy::kMecc) {
  SystemConfig cfg;
  cfg.policy = policy;
  // Long enough for the synthetic traces to re-read lines they wrote —
  // shadow classification only happens on read-after-write addresses.
  cfg.instructions = 200'000;
  cfg.seed = 1;
  cfg.fault.enabled = true;
  cfg.fault.shadow_lines = 1024;
  return cfg;
}

const trace::BenchmarkProfile& profile() {
  return trace::all_benchmarks()[0];
}

TEST(FaultCampaign, ShadowAttachesAndErrorsStatsAppear) {
  System system(profile(), campaign_config());
  ASSERT_NE(system.shadow(), nullptr);
  ASSERT_NE(system.due_policy(), nullptr);
  const RunResult r = system.run();
  EXPECT_GT(r.stats.counter("errors.shadow_writes"), 0u);
  EXPECT_GT(r.stats.counter("errors.shadow_reads"), 0u);
  // Nothing was injected: the campaign must be error-free.
  EXPECT_EQ(r.stats.counter("errors.due"), 0u);
  EXPECT_EQ(r.stats.counter("errors.silent"), 0u);
  EXPECT_DOUBLE_EQ(r.stats.gauge("errors.degraded"), 0.0);
}

TEST(FaultCampaign, DisabledByDefaultAndForNoEcc) {
  SystemConfig off;
  off.policy = EccPolicy::kMecc;
  off.instructions = 10'000;
  System plain(profile(), off);
  EXPECT_EQ(plain.shadow(), nullptr);
  EXPECT_EQ(plain.due_policy(), nullptr);

  System noecc(profile(), campaign_config(EccPolicy::kNoEcc));
  EXPECT_EQ(noecc.shadow(), nullptr);  // nothing to decode, ever
}

TEST(FaultCampaign, ShadowIsTimingNeutral) {
  // The shadow is purely functional: enabling the campaign must not move
  // a single simulated cycle.
  SystemConfig with = campaign_config();
  SystemConfig without = with;
  without.fault.enabled = false;
  System a(profile(), with);
  System b(profile(), without);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_EQ(ra.cpu_cycles, rb.cpu_cycles);
  EXPECT_EQ(ra.reads, rb.reads);
  EXPECT_EQ(ra.downgrades, rb.downgrades);
}

TEST(FaultCampaign, IdleInjectionUsesRetentionModelBer) {
  SystemConfig cfg = campaign_config();
  System system(profile(), cfg);
  (void)system.run();
  const IdleReport rep = system.idle_period(5.0);
  // MECC idles at the slowed refresh; the injected BER must match the
  // RetentionModel at the effective refresh period.
  ASSERT_GT(rep.refresh_period_s, 0.064);
  const reliability::RetentionModel retention;
  EXPECT_DOUBLE_EQ(rep.injected_ber,
                   retention.bit_failure_probability(rep.refresh_period_s));
}

TEST(FaultCampaign, BerOverrideWins) {
  SystemConfig cfg = campaign_config();
  cfg.fault.ber_override = 3e-3;
  System system(profile(), cfg);
  (void)system.run();
  const IdleReport rep = system.idle_period(5.0);
  EXPECT_DOUBLE_EQ(rep.injected_ber, 3e-3);
  EXPECT_GT(rep.injected_bits, 0u);
}

TEST(FaultCampaign, DueLadderClimbsToDegradedUnderHeavyInjection) {
  SystemConfig cfg = campaign_config();
  cfg.fault.ber_override = 8e-3;  // far beyond ECC-6 at wake-up
  System system(profile(), cfg);
  // Three poisoned sleeps: at this slice length each wake-up sees only a
  // few shadowed reads, so roughly one unrecovered DUE escalates per
  // period — scrub, then forced upgrade, then the refresh fallback.
  for (int cycle = 0; cycle < 3; ++cycle) {
    (void)system.run_period(cfg.instructions);
    (void)system.idle_period(10.0);
  }
  const RunResult r = system.run_period(cfg.instructions);

  EXPECT_GT(r.stats.counter("errors.due"), 0u);
  EXPECT_GT(r.stats.counter("errors.retries"), 0u);
  EXPECT_EQ(r.stats.counter("errors.scrubs"), 1u);
  EXPECT_EQ(r.stats.counter("errors.forced_upgrades"), 1u);
  EXPECT_EQ(r.stats.counter("errors.refresh_fallbacks"), 1u);
  EXPECT_DOUBLE_EQ(r.stats.gauge("errors.degraded"), 1.0);
  EXPECT_TRUE(system.due_policy()->degraded());
  // Degraded memory refreshes at the JEDEC 64 ms period from here on,
  // even through MECC idle entry.
  const IdleReport rep = system.idle_period(1.0);
  EXPECT_DOUBLE_EQ(rep.refresh_period_s, 0.064);
  EXPECT_EQ(rep.injected_bits, 0u);  // no slowed refresh, no injection
}

TEST(FaultCampaign, LifecycleIsDeterministic) {
  auto run_once = [] {
    SystemConfig cfg = campaign_config();
    cfg.fault.ber_override = 8e-3;
    cfg.fault.transient_read_ber = 1e-3;
    System system(profile(), cfg);
    (void)system.run_period(cfg.instructions);
    (void)system.idle_period(10.0);
    const RunResult r = system.run_period(cfg.instructions);
    return r.stats;
  };
  const StatSet a = run_once();
  const StatSet b = run_once();
  EXPECT_EQ(a.counter("errors.due"), b.counter("errors.due"));
  EXPECT_EQ(a.counter("errors.ce_bits"), b.counter("errors.ce_bits"));
  EXPECT_EQ(a.counter("errors.retries"), b.counter("errors.retries"));
  EXPECT_EQ(a.counter("errors.injected_bits"),
            b.counter("errors.injected_bits"));
}

TEST(FaultCampaign, WorksForStaticEccPoliciesToo) {
  // SECDED and ECC-6 have no engine, but the shadow still mirrors their
  // fixed protection mode and counts decode outcomes.
  for (const EccPolicy policy : {EccPolicy::kSecded, EccPolicy::kEcc6}) {
    SystemConfig cfg = campaign_config(policy);
    System system(profile(), cfg);
    ASSERT_NE(system.shadow(), nullptr) << policy_name(policy);
    const RunResult r = system.run();
    EXPECT_GT(r.stats.counter("errors.shadow_reads"), 0u)
        << policy_name(policy);
    EXPECT_EQ(r.stats.counter("errors.due"), 0u) << policy_name(policy);
  }
}

}  // namespace
}  // namespace mecc::sim
