// Fleet campaign orchestrator suite (docs/FLEET.md).
//
// This binary is its own fleet worker: main() dispatches to
// fleet::worker_main() when spawned with --fleet-worker, so every
// Orchestrator test below supervises real child processes of this very
// executable — real fork/exec, real SIGKILL, real heartbeat files —
// with failure injection driven by the selftest spec (crash@S:N,
// dirty@S:N, hang@S:N, slow@S:MS, orch-exit@K).
#include "sim/fleet.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <string>

#include "common/fsio.h"

namespace mecc::sim::fleet {
namespace {

/// Fresh per-test checkpoint directory under the test tmpdir.
[[nodiscard]] std::string fresh_state_dir() {
  std::string templ = ::testing::TempDir() + "fleetXXXXXX";
  const char* dir = ::mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

/// Small, fast campaign: 8 shards x 50 devices, tight supervision
/// clocks so watchdog tests finish in tenths of a second.
[[nodiscard]] FleetConfig small_config(const std::string& state_dir) {
  FleetConfig cfg;
  cfg.devices = 400;
  cfg.devices_per_shard = 50;
  cfg.seed = 11;
  cfg.model.lines_per_device = 1u << 12;
  cfg.jobs = 3;
  cfg.max_retries = 2;
  cfg.shard_deadline_s = 60.0;
  cfg.heartbeat_timeout_s = 5.0;
  cfg.heartbeat_interval_s = 0.05;
  cfg.backoff_base_s = 0.01;
  cfg.state_dir = state_dir;
  return cfg;
}

TEST(FleetRng, DrawsAreIndependentOfShardAssignment) {
  // A device's sample and simulation depend only on (seed, device id):
  // re-sharding the same fleet must not move a single draw.
  auto a = small_config(::testing::TempDir());
  auto b = a;
  b.devices_per_shard = 7;   // radically different sharding
  b.jobs = 1;                // and orchestration
  b.max_retries = 9;
  for (std::uint64_t device : {0ull, 123ull, 399ull}) {
    const DeviceSample sa = sample_device(a, device);
    const DeviceSample sb = sample_device(b, device);
    EXPECT_EQ(sa.klass, sb.klass);
    EXPECT_EQ(sa.active_share, sb.active_share);
    EXPECT_EQ(sa.temperature_c, sb.temperature_c);
    EXPECT_EQ(sa.ber, sb.ber);
    const DeviceResult ra = simulate_device(a, sa);
    const DeviceResult rb = simulate_device(b, sb);
    EXPECT_EQ(ra.due_events, rb.due_events);
    EXPECT_EQ(ra.ce_events, rb.ce_events);
    EXPECT_EQ(ra.energy_mj_per_day, rb.energy_mj_per_day);
  }
}

TEST(FleetRng, CounterRngIsStatelessAndSeedSensitive) {
  const CounterRng r1(1, 5);
  const CounterRng r1b(1, 5);
  const CounterRng r2(2, 5);
  const CounterRng r3(1, 6);
  EXPECT_EQ(r1.bits(42), r1b.bits(42));
  EXPECT_NE(r1.bits(42), r2.bits(42));
  EXPECT_NE(r1.bits(42), r3.bits(42));
  const double u = r1.uniform(7);
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
  EXPECT_EQ(r1.poisson(3.5, 100), r1b.poisson(3.5, 100));
}

TEST(FleetShard, RunShardIsDeterministic) {
  const auto cfg = small_config(::testing::TempDir());
  const ShardResult a = run_shard(cfg, 3);
  const ShardResult b = run_shard(cfg, 3);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.devices, 50u);
  EXPECT_EQ(a.due_events, b.due_events);
  EXPECT_EQ(a.due_rate, b.due_rate);
  EXPECT_EQ(a.energy, b.energy);
}

TEST(FleetShard, ResultJsonRoundTripsExactly) {
  const auto cfg = small_config(::testing::TempDir());
  const ShardResult r = run_shard(cfg, 1);
  const std::string doc = shard_result_json(r);
  ShardResult parsed;
  ASSERT_TRUE(parse_shard_result(doc, &parsed));
  EXPECT_EQ(parsed.shard, r.shard);
  EXPECT_EQ(parsed.devices, r.devices);
  EXPECT_EQ(parsed.due_events, r.due_events);
  EXPECT_EQ(parsed.ce_events, r.ce_events);
  EXPECT_EQ(parsed.digest, r.digest);
  EXPECT_EQ(parsed.energy_mj_per_day_sum, r.energy_mj_per_day_sum);
  EXPECT_EQ(parsed.due_rate, r.due_rate);   // bit-exact, via *_bits fields
  EXPECT_EQ(parsed.energy, r.energy);
  // A truncated document must be rejected, never half-parsed.
  EXPECT_FALSE(
      parse_shard_result(doc.substr(0, doc.size() / 2), &parsed));
  EXPECT_FALSE(parse_shard_result("{}", &parsed));
}

TEST(FleetSelftest, SpecParsing) {
  SelftestSpec spec;
  std::string error;
  ASSERT_TRUE(parse_selftest("crash@2:3,dirty@5,hang@1:1,slow@4:250,orch-exit@7",
                             &spec, &error));
  EXPECT_EQ(spec.crash.at(2), 3u);
  EXPECT_EQ(spec.dirty.at(5), 1u);  // count defaults to 1
  EXPECT_EQ(spec.hang.at(1), 1u);
  EXPECT_EQ(spec.slow_ms.at(4), 250u);
  EXPECT_EQ(spec.orch_exit_after, 7u);
  EXPECT_TRUE(parse_selftest("", &spec, &error));
  EXPECT_FALSE(parse_selftest("crash", &spec, &error));
  EXPECT_FALSE(parse_selftest("crash@x", &spec, &error));
  EXPECT_FALSE(parse_selftest("slow@3", &spec, &error));
  EXPECT_FALSE(parse_selftest("orch-exit@0", &spec, &error));
  EXPECT_FALSE(parse_selftest("explode@1", &spec, &error));
}

TEST(FleetHeartbeat, TornOrMissingReadsNeverRegisterProgress) {
  // Workers truncate-write their heartbeat, so the watchdog can race a
  // mid-rewrite and read "" (or fail the read entirely). Neither is
  // evidence of progress, and neither may update the stored value:
  // if "" were stored, the next read of the *same stale* heartbeat
  // would look like an advance and a genuinely hung worker would
  // dodge the watchdog forever.
  std::string last;
  EXPECT_FALSE(heartbeat_advanced(/*read_ok=*/false, "", &last));
  EXPECT_TRUE(last.empty());
  EXPECT_FALSE(heartbeat_advanced(/*read_ok=*/true, "", &last));
  EXPECT_TRUE(last.empty());

  EXPECT_TRUE(heartbeat_advanced(true, "100", &last));
  EXPECT_FALSE(heartbeat_advanced(true, "100", &last));  // unchanged: hung
  EXPECT_FALSE(heartbeat_advanced(true, "", &last));     // torn read
  // The same stale value after the torn read is still not an advance.
  EXPECT_FALSE(heartbeat_advanced(true, "100", &last));
  EXPECT_EQ(last, "100");
  EXPECT_TRUE(heartbeat_advanced(true, "200", &last));
  EXPECT_EQ(last, "200");
}

TEST(FleetOrchestrator, HappyPathCompletesEveryShard) {
  const std::string dir = fresh_state_dir();
  Orchestrator orch(small_config(dir));
  const CampaignOutcome out = orch.run();
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_EQ(out.shards_total, 8u);
  EXPECT_EQ(out.shards_done, 8u);
  EXPECT_EQ(out.shards_degraded, 0u);
  EXPECT_EQ(out.devices_simulated, 400u);
  EXPECT_EQ(out.due_rate.count(), 400u);
  EXPECT_DOUBLE_EQ(out.coverage(), 1.0);
  // Aggregate: header + 8 shard lines + fleet footer.
  const std::string agg = orch.aggregate_jsonl();
  EXPECT_EQ(std::count(agg.begin(), agg.end(), '\n'), 10);
  EXPECT_NE(agg.find("mecc-fleet-aggregate-v1"), std::string::npos);
  EXPECT_NE(agg.find("\"coverage\":1"), std::string::npos);
}

TEST(FleetOrchestrator, CrashedWorkerIsRetriedWithBoundedBackoff) {
  const std::string dir = fresh_state_dir();
  auto cfg = small_config(dir);
  cfg.selftest = "crash@1:2";  // shard 1 SIGKILLs itself on attempts 0, 1
  Orchestrator orch(cfg);
  const CampaignOutcome out = orch.run();
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.shards_done, 8u);
  EXPECT_EQ(out.shards_degraded, 0u);
  EXPECT_EQ(out.workers_crashed, 2u);
  EXPECT_EQ(out.retries, 2u);
  // Exponential backoff: delays double per attempt of the same shard.
  ASSERT_EQ(out.backoff_s.size(), 2u);
  EXPECT_DOUBLE_EQ(out.backoff_s[0], cfg.backoff_base_s);
  EXPECT_DOUBLE_EQ(out.backoff_s[1], 2.0 * cfg.backoff_base_s);
}

TEST(FleetOrchestrator, ExhaustedRetriesDegradeNotAbort) {
  const std::string dir = fresh_state_dir();
  auto cfg = small_config(dir);
  cfg.max_retries = 1;
  cfg.selftest = "dirty@2:99";  // shard 2 always exits 3
  Orchestrator orch(cfg);
  const CampaignOutcome out = orch.run();
  EXPECT_TRUE(out.completed);  // graceful degradation, not failure
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_EQ(out.shards_done, 7u);
  EXPECT_EQ(out.shards_degraded, 1u);
  EXPECT_EQ(out.workers_dirty, 2u);  // attempts 0 and 1
  EXPECT_EQ(out.retries, 1u);
  EXPECT_EQ(out.devices_simulated, 350u);
  EXPECT_DOUBLE_EQ(out.coverage(), 7.0 / 8.0);
  EXPECT_NE(orch.aggregate_jsonl().find("{\"shard\":2,\"degraded\":true}"),
            std::string::npos);
}

TEST(FleetOrchestrator, WatchdogKillsHungWorkersButSparesSlowOnes) {
  const std::string dir = fresh_state_dir();
  auto cfg = small_config(dir);
  // Shard 0 stops heartbeating forever; shard 1 sleeps 0.6 s but keeps
  // heartbeating. Only the former may be killed before the deadline.
  cfg.selftest = "hang@0:1,slow@1:600";
  cfg.heartbeat_timeout_s = 0.3;
  cfg.heartbeat_interval_s = 0.05;
  cfg.shard_deadline_s = 60.0;
  Orchestrator orch(cfg);
  const CampaignOutcome out = orch.run();
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.shards_done, 8u);
  EXPECT_EQ(out.workers_hung_killed, 1u);
  EXPECT_EQ(out.workers_deadline_killed, 0u);
  EXPECT_EQ(out.retries, 1u);
}

TEST(FleetOrchestrator, ResumeRejectsMismatchedFingerprint) {
  const std::string dir = fresh_state_dir();
  {
    Orchestrator orch(small_config(dir));
    EXPECT_TRUE(orch.run().completed);
  }
  auto cfg = small_config(dir);
  cfg.seed = 12;  // different population
  cfg.resume = true;
  Orchestrator orch(cfg);
  const CampaignOutcome out = orch.run();
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.exit_code, 2);
  EXPECT_NE(out.error.find("fingerprint"), std::string::npos);
}

TEST(FleetOrchestrator, InterruptCheckpointsAndResumeCompletes) {
  const std::string dir = fresh_state_dir();
  static volatile std::sig_atomic_t interrupt = SIGTERM;
  auto cfg = small_config(dir);
  cfg.interrupt = &interrupt;
  {
    Orchestrator orch(cfg);
    const CampaignOutcome out = orch.run();
    EXPECT_FALSE(out.completed);
    EXPECT_EQ(out.exit_code, 128 + SIGTERM);
  }
  interrupt = 0;
  cfg.resume = true;
  Orchestrator orch(cfg);
  const CampaignOutcome out = orch.run();
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.shards_done, 8u);
}

TEST(FleetOrchestrator, ResumeAfterOrchestratorKillIsByteIdentical) {
  // Reference: one uninterrupted campaign.
  const std::string ref_dir = fresh_state_dir();
  std::string reference;
  {
    Orchestrator orch(small_config(ref_dir));
    ASSERT_TRUE(orch.run().completed);
    reference = orch.aggregate_jsonl();
    ASSERT_TRUE(orch.write_aggregate(ref_dir + "/aggregate.jsonl"));
  }
  // Interrupted: the orchestrator hard-exits (_Exit(137), the moral
  // equivalent of kill -9: no cleanup, no flush) after its 3rd shard
  // completion — run it in a fork so the test process survives.
  const std::string dir = fresh_state_dir();
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto cfg = small_config(dir);
    cfg.jobs = 2;  // different schedule than the reference on purpose
    cfg.selftest = "orch-exit@3";
    Orchestrator orch(cfg);
    const CampaignOutcome out = orch.run();
    ::_exit(out.exit_code);  // not reached: the selftest _Exits first
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 137);
  // Resume from the durable checkpoint, with different parallelism.
  auto cfg = small_config(dir);
  cfg.jobs = 5;
  cfg.resume = true;
  Orchestrator orch(cfg);
  const CampaignOutcome out = orch.run();
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.shards_done, 8u);
  EXPECT_EQ(orch.aggregate_jsonl(), reference);
  // And the durable file path produces the same bytes.
  ASSERT_TRUE(orch.write_aggregate(dir + "/aggregate.jsonl"));
  std::string a;
  std::string b;
  ASSERT_TRUE(read_file(ref_dir + "/aggregate.jsonl", &a));
  ASSERT_TRUE(read_file(dir + "/aggregate.jsonl", &b));
  EXPECT_EQ(a, b);
}

TEST(FleetOrchestrator, ResumeWithNoCheckpointFails) {
  auto cfg = small_config(fresh_state_dir());
  cfg.resume = true;
  Orchestrator orch(cfg);
  const CampaignOutcome out = orch.run();
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.exit_code, 2);
}

TEST(FleetOrchestrator, InvalidConfigIsRejected) {
  {
    auto cfg = small_config(fresh_state_dir());
    cfg.state_dir.clear();
    EXPECT_EQ(Orchestrator(cfg).run().exit_code, 2);
  }
  {
    auto cfg = small_config(fresh_state_dir());
    cfg.devices_per_shard = 0;
    EXPECT_EQ(Orchestrator(cfg).run().exit_code, 2);
  }
  {
    auto cfg = small_config(fresh_state_dir());
    cfg.selftest = "bogus@1";
    EXPECT_EQ(Orchestrator(cfg).run().exit_code, 2);
  }
}

TEST(FleetOrchestrator, StatsComponentCountsSupervisionEvents) {
  const std::string dir = fresh_state_dir();
  auto cfg = small_config(dir);
  cfg.max_retries = 1;
  cfg.selftest = "crash@0:99,dirty@4:1";
  Orchestrator orch(cfg);
  const CampaignOutcome out = orch.run();
  EXPECT_TRUE(out.completed);
  StatSet s;
  out.to_stats(s);
  EXPECT_EQ(s.counter("shards_total"), 8u);
  EXPECT_EQ(s.counter("shards_done"), 7u);
  EXPECT_EQ(s.counter("shards_degraded"), 1u);
  EXPECT_EQ(s.counter("workers_crashed"), 2u);
  EXPECT_EQ(s.counter("workers_dirty"), 1u);
  EXPECT_EQ(s.counter("devices_simulated"), 350u);
  EXPECT_DOUBLE_EQ(s.gauge("coverage"), 7.0 / 8.0);
  EXPECT_EQ(s.dist("due_per_year").count, 350u);
  EXPECT_GT(s.gauge("energy_mj_per_day_p99"), 0.0);
}

}  // namespace
}  // namespace mecc::sim::fleet

// Custom main: this test binary hosts its own fleet workers (the
// orchestrator re-execs /proc/self/exe with --fleet-worker), so worker
// dispatch must run before gtest ever sees argv.
int main(int argc, char** argv) {
  if (mecc::sim::fleet::is_fleet_worker_invocation(argc, argv)) {
    return mecc::sim::fleet::worker_main(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
