// The paper's Fig. 4 lifecycle on a single System: active period ->
// idle (ECC-Upgrade, 1 s self refresh) -> wake -> active period -> ...
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/system.h"

namespace mecc::sim {
namespace {

SystemConfig lifecycle_config() {
  SystemConfig c;
  c.policy = EccPolicy::kMecc;
  c.instructions = 400'000;
  return c;
}

TEST(Lifecycle, IdleEntryUpgradesAndSleepsAt1s) {
  const auto& b = trace::benchmark("astar");
  System sys(b, lifecycle_config());
  const RunResult active = sys.run();
  ASSERT_GT(active.downgrades, 0u);

  const IdleReport idle = sys.idle_period(2.0);
  EXPECT_GT(idle.lines_upgraded, 0u);
  EXPECT_GT(idle.upgrade_seconds, 0.0);
  EXPECT_LT(idle.upgrade_seconds, 0.1);  // MDT keeps the walk short
  EXPECT_DOUBLE_EQ(idle.refresh_period_s, 1.024);  // 64 ms * 16
  // Two seconds of internal REF pulses at 16x the 7.8 us interval:
  // 2 s / (7.8 us * 16) ~ 16.0 K pulses (16x fewer than baseline).
  EXPECT_NEAR(static_cast<double>(idle.refresh_pulses), 2.0 / (7.8e-6 * 16),
              200.0);
  EXPECT_GT(idle.idle_energy_mj, 0.0);
}

TEST(Lifecycle, SecondActivePeriodPaysFirstTouchAgain) {
  const auto& b = trace::benchmark("soplex");
  System sys(b, lifecycle_config());
  const RunResult first = sys.run();
  (void)sys.idle_period(1.0);
  const RunResult second = sys.run_period(400'000);

  // After the upgrade, all lines are strong again: the second period
  // must pay ECC-6 decodes and downgrade lines anew.
  EXPECT_GT(second.strong_decodes, 0u);
  EXPECT_GT(second.downgrades, 0u);
  // Period accounting is per period, not cumulative.
  EXPECT_EQ(second.instructions, 400'000u);
  EXPECT_NEAR(static_cast<double>(second.reads) /
                  static_cast<double>(first.reads),
              1.0, 0.5);
}

TEST(Lifecycle, BaselineSleepsAt64ms) {
  const auto& b = trace::benchmark("povray");
  SystemConfig c = lifecycle_config();
  c.policy = EccPolicy::kNoEcc;
  System sys(b, c);
  (void)sys.run();
  const IdleReport idle = sys.idle_period(1.0);
  EXPECT_EQ(idle.lines_upgraded, 0u);
  EXPECT_DOUBLE_EQ(idle.refresh_period_s, 0.064);
  // One REF pulse per 7.8 us in one second: ~128 K (16x MECC's rate -
  // the paper's Fig. 8-left refresh-operation reduction).
  EXPECT_NEAR(static_cast<double>(idle.refresh_pulses), 1.0 / 7.8e-6,
              1500.0);
}

TEST(Lifecycle, MeccIdleEnergyHalvesBaselines) {
  const auto& b = trace::benchmark("gamess");
  SystemConfig base_cfg = lifecycle_config();
  base_cfg.policy = EccPolicy::kNoEcc;
  System base(b, base_cfg);
  (void)base.run();
  const IdleReport bi = base.idle_period(10.0);

  System mecc(b, lifecycle_config());
  (void)mecc.run();
  const IdleReport mi = mecc.idle_period(10.0);

  EXPECT_NEAR(mi.idle_energy_mj / bi.idle_energy_mj, 0.57, 0.02);
}

TEST(Lifecycle, ManyCyclesStayConsistent) {
  const auto& b = trace::benchmark("bzip2");
  System sys(b, lifecycle_config());
  for (int cycle = 0; cycle < 4; ++cycle) {
    const RunResult r = sys.run_period(150'000);
    EXPECT_GE(r.instructions, 150'000u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.energy.total_mj(), 0.0);
    const IdleReport idle = sys.idle_period(0.5);
    EXPECT_GT(idle.idle_energy_mj, 0.0);
  }
}

TEST(Lifecycle, SmdRearmsAfterEveryWake) {
  const auto& b = trace::benchmark("lbm");  // heavy: SMD will re-enable
  SystemConfig c = lifecycle_config();
  c.mecc_use_smd = true;
  c.smd_quantum_cycles = 50'000;
  System sys(b, c);
  const RunResult first = sys.run_period(300'000);
  EXPECT_LT(first.frac_downgrade_disabled, 0.5);
  (void)sys.idle_period(1.0);
  const RunResult second = sys.run_period(300'000);
  // Downgrade was re-disabled on wake and re-enabled by traffic again.
  EXPECT_GT(second.frac_downgrade_disabled, 0.0);
  EXPECT_LT(second.frac_downgrade_disabled, 0.5);
}

}  // namespace
}  // namespace mecc::sim
