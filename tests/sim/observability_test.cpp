// End-to-end observability determinism (docs/OBSERVABILITY.md): traces
// and metrics timelines are byte-identical across --fast-forward modes
// and --jobs counts, the trace ring honors its limit, and dropped
// events surface as errors.trace_dropped.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/experiment.h"
#include "sim/system.h"
#include "trace/benchmarks.h"

namespace mecc::sim {
namespace {

[[nodiscard]] std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// A MECC config exercising every instrumented layer: SMD quanta, fault
/// injection (CE/DUE/ladder), power-downs, refresh-divider moves.
[[nodiscard]] SystemConfig observed_config(bool fast_forward) {
  SystemConfig cfg;
  cfg.policy = EccPolicy::kMecc;
  cfg.instructions = 60'000;
  cfg.fast_forward = fast_forward;
  cfg.mecc_use_smd = true;
  cfg.smd_quantum_cycles = 4'000;
  cfg.fault.enabled = true;
  cfg.fault.shadow_lines = 512;
  cfg.fault.ber_override = 4e-3;
  cfg.fault.transient_read_ber = 1e-3;
  cfg.trace.enabled = true;
  cfg.metrics.enabled = true;
  cfg.metrics.interval = 10'000;
  return cfg;
}

/// Fig. 4 lifecycle (active / poisoned idle / active) capturing the
/// trace and metrics bytes after the System flushed its open spans.
struct ObservedRun {
  std::string trace;
  std::string metrics;
  RunResult result;
};

[[nodiscard]] ObservedRun run_lifecycle(SystemConfig cfg,
                                        const std::string& tag) {
  cfg.trace.path = ::testing::TempDir() + "mecc_obs_" + tag + ".json";
  cfg.metrics.path = ::testing::TempDir() + "mecc_obs_" + tag + ".jsonl";
  ObservedRun out;
  {
    System system(trace::all_benchmarks()[0], cfg);
    (void)system.run_period(cfg.instructions);
    (void)system.idle_period(2.0);
    out.result = system.run_period(cfg.instructions);
  }  // destructor flushes open spans and writes both files
  out.trace = slurp(cfg.trace.path);
  out.metrics = slurp(cfg.metrics.path);
  std::remove(cfg.trace.path.c_str());
  std::remove(cfg.metrics.path.c_str());
  return out;
}

TEST(Observability, TraceAndMetricsIdenticalAcrossFastForwardModes) {
  const ObservedRun on = run_lifecycle(observed_config(true), "ff_on");
  const ObservedRun off = run_lifecycle(observed_config(false), "ff_off");
  ASSERT_FALSE(on.trace.empty());
  ASSERT_FALSE(on.metrics.empty());
  EXPECT_TRUE(same_simulated_result(on.result, off.result));
  EXPECT_EQ(on.trace, off.trace);
  EXPECT_EQ(on.metrics, off.metrics);
  // The trace actually covers every instrumented layer.
  for (const char* name :
       {"\"ACT\"", "\"RD\"", "\"REF\"", "\"row_open\"", "\"pd_enter\"",
        "\"idle\"", "\"active\"", "\"smd_quantum\"", "\"shadow_ce\"",
        "\"inject_retention\""}) {
    EXPECT_NE(on.trace.find(name), std::string::npos) << name;
  }
  // The metrics timeline has interior window samples plus the edges.
  EXPECT_NE(on.metrics.find("\"phase\":\"active\""), std::string::npos);
  EXPECT_NE(on.metrics.find("\"phase\":\"idle_enter\""), std::string::npos);
  EXPECT_NE(on.metrics.find("\"phase\":\"wake\""), std::string::npos);
  EXPECT_NE(on.metrics.find("\"phase\":\"final\""), std::string::npos);
}

TEST(Observability, FaultCampaignLadderTraceIdenticalAcrossModes) {
  auto make = [](bool ff) {
    SystemConfig cfg = observed_config(ff);
    cfg.fault.ber_override = 2e-2;  // hot enough to climb the DUE ladder
    return run_lifecycle(cfg, ff ? "ladder_on" : "ladder_off");
  };
  const ObservedRun on = make(true);
  const ObservedRun off = make(false);
  EXPECT_EQ(on.trace, off.trace);
  EXPECT_EQ(on.metrics, off.metrics);
  EXPECT_NE(on.trace.find("\"due\""), std::string::npos);
}

TEST(Observability, MetricsIdenticalAtAnyJobCount) {
  // Three-job sweep written through run_jobs' per-run path derivation:
  // the derived file set and every byte in it must not depend on the
  // worker count.
  auto sweep = [](unsigned n_threads, const std::string& tag) {
    SystemConfig cfg;
    cfg.instructions = 30'000;
    cfg.policy = EccPolicy::kMecc;
    cfg.metrics.enabled = true;
    cfg.metrics.interval = 10'000;
    cfg.metrics.path = ::testing::TempDir() + "mecc_obs_jobs_" + tag +
                       ".jsonl";
    const auto benchmarks = trace::all_benchmarks();
    std::vector<SuiteJob> jobs(3);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      jobs[i].profile = &benchmarks[i];
      jobs[i].policy = cfg.policy;
      jobs[i].config = cfg;
      jobs[i].config.seed = suite_seed(1, i);
    }
    (void)run_jobs(jobs, n_threads);
    std::vector<std::string> files;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const std::string path = per_run_path(
          cfg.metrics.path,
          "i" + std::to_string(i) + "-" + std::string(benchmarks[i].name));
      files.push_back(slurp(path));
      std::remove(path.c_str());
    }
    return files;
  };
  const auto serial = sweep(1, "serial");
  const auto parallel = sweep(8, "parallel");
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FALSE(serial[i].empty()) << "missing metrics file " << i;
    EXPECT_EQ(serial[i], parallel[i]) << "metrics differ for job " << i;
  }
}

TEST(Observability, TraceLimitKeepsNewestAndSurfacesDroppedCounter) {
  SystemConfig cfg = observed_config(true);
  cfg.trace.limit = 64;  // far fewer than the lifecycle emits
  cfg.metrics.enabled = false;
  System system(trace::all_benchmarks()[0], cfg);
  const RunResult r = system.run_period(cfg.instructions);
  ASSERT_NE(system.tracer(), nullptr);
  EXPECT_EQ(system.tracer()->recorded(), 64u);
  EXPECT_GT(system.tracer()->dropped(), 0u);
  EXPECT_EQ(r.stats.counter("errors.trace_dropped"),
            system.tracer()->dropped());
  const std::string j = system.tracer()->json();
  EXPECT_NE(j.find("\"dropped_events\":" +
                   std::to_string(system.tracer()->dropped())),
            std::string::npos);
}

TEST(Observability, DisabledRunCarriesNoObservabilityState) {
  SystemConfig cfg;
  cfg.instructions = 5'000;
  System system(trace::all_benchmarks()[0], cfg);
  const RunResult r = system.run();
  EXPECT_EQ(system.tracer(), nullptr);
  EXPECT_EQ(system.metrics(), nullptr);
  EXPECT_EQ(r.stats.counter("errors.trace_dropped"), 0u);
}

}  // namespace
}  // namespace mecc::sim
