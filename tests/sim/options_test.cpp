#include "sim/options.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace mecc::sim {
namespace {

SimOptions parse(std::vector<const char*> args, InstCount def = 1000) {
  args.insert(args.begin(), "prog");
  return parse_options(static_cast<int>(args.size()),
                       const_cast<char**>(args.data()), def);
}

class OptionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("MECC_INSTRUCTIONS");
    unsetenv("MECC_SEED");
    unsetenv("MECC_JOBS");
  }
  void TearDown() override {
    unsetenv("MECC_INSTRUCTIONS");
    unsetenv("MECC_SEED");
    unsetenv("MECC_JOBS");
  }
};

TEST_F(OptionsTest, DefaultsApply) {
  const SimOptions o = parse({}, 12345);
  EXPECT_EQ(o.instructions, 12345u);
  EXPECT_EQ(o.seed, 1u);
}

TEST_F(OptionsTest, ArgvOverrides) {
  const SimOptions o = parse({"--instructions=777", "--seed=9"});
  EXPECT_EQ(o.instructions, 777u);
  EXPECT_EQ(o.seed, 9u);
}

TEST_F(OptionsTest, EnvOverridesDefault) {
  setenv("MECC_INSTRUCTIONS", "4242", 1);
  setenv("MECC_SEED", "7", 1);
  const SimOptions o = parse({});
  EXPECT_EQ(o.instructions, 4242u);
  EXPECT_EQ(o.seed, 7u);
}

TEST_F(OptionsTest, ArgvBeatsEnv) {
  setenv("MECC_INSTRUCTIONS", "4242", 1);
  const SimOptions o = parse({"--instructions=55"});
  EXPECT_EQ(o.instructions, 55u);
}

TEST_F(OptionsTest, MalformedValuesIgnored) {
  const SimOptions o = parse({"--instructions=abc", "--seed=1x"}, 99);
  EXPECT_EQ(o.instructions, 99u);
  EXPECT_EQ(o.seed, 1u);
}

TEST_F(OptionsTest, ZeroInstructionsRejected) {
  const SimOptions o = parse({"--instructions=0"}, 99);
  EXPECT_EQ(o.instructions, 99u);
}

TEST_F(OptionsTest, UnknownFlagsIgnored) {
  const SimOptions o = parse({"--benchmark_filter=foo", "-v"}, 99);
  EXPECT_EQ(o.instructions, 99u);
}

TEST_F(OptionsTest, JobsDefaultsToHardwareConcurrency) {
  const SimOptions o = parse({});
  EXPECT_GE(o.jobs, 1u);  // hardware_concurrency, floored at 1
}

TEST_F(OptionsTest, JobsArgvOverride) {
  const SimOptions o = parse({"--jobs=3"});
  EXPECT_EQ(o.jobs, 3u);
}

TEST_F(OptionsTest, JobsEnvOverride) {
  setenv("MECC_JOBS", "5", 1);
  const SimOptions o = parse({});
  EXPECT_EQ(o.jobs, 5u);
}

TEST_F(OptionsTest, JobsArgvBeatsEnv) {
  setenv("MECC_JOBS", "5", 1);
  const SimOptions o = parse({"--jobs=2"});
  EXPECT_EQ(o.jobs, 2u);
}

TEST_F(OptionsTest, JobsZeroAndMalformedRejected) {
  const SimOptions a = parse({"--jobs=0"});
  EXPECT_GE(a.jobs, 1u);
  setenv("MECC_JOBS", "junk", 1);
  const SimOptions b = parse({});
  EXPECT_GE(b.jobs, 1u);
}

}  // namespace
}  // namespace mecc::sim
