#include "sim/options.h"

#include <gtest/gtest.h>

#include "memctrl/controller.h"

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

namespace mecc::sim {
namespace {

std::optional<SimOptions> parse_checked(std::vector<const char*> args,
                                        std::string* error = nullptr,
                                        InstCount def = 1000,
                                        std::vector<bool>* consumed = nullptr) {
  args.insert(args.begin(), "prog");
  return parse_options_checked(static_cast<int>(args.size()),
                               const_cast<char**>(args.data()), def, error,
                               consumed);
}

SimOptions parse(std::vector<const char*> args, InstCount def = 1000) {
  const auto o = parse_checked(std::move(args), nullptr, def);
  EXPECT_TRUE(o.has_value());
  return o.value_or(SimOptions{});
}

class OptionsTest : public ::testing::Test {
 protected:
  void SetUp() override { clear_env(); }
  void TearDown() override { clear_env(); }

 private:
  static void clear_env() {
    unsetenv("MECC_INSTRUCTIONS");
    unsetenv("MECC_SEED");
    unsetenv("MECC_JOBS");
    unsetenv("MECC_BER");
    unsetenv("MECC_OUT");
    unsetenv("MECC_REFRESH_POLICY");
    unsetenv("MECC_REFRESH_GRANULARITY");
    unsetenv("MECC_CHANNELS");
    unsetenv("MECC_RANKS");
    unsetenv("MECC_INTERLEAVE");
    unsetenv("MECC_STREAMS");
    unsetenv("MECC_CHANNEL_PARALLEL");
  }
};

TEST_F(OptionsTest, DefaultsApply) {
  const SimOptions o = parse({}, 12345);
  EXPECT_EQ(o.instructions, 12345u);
  EXPECT_EQ(o.seed, 1u);
  EXPECT_LT(o.ber, 0.0);  // "not set"
  EXPECT_TRUE(o.out.empty());
}

TEST_F(OptionsTest, ArgvOverrides) {
  const SimOptions o = parse({"--instructions=777", "--seed=9"});
  EXPECT_EQ(o.instructions, 777u);
  EXPECT_EQ(o.seed, 9u);
}

TEST_F(OptionsTest, EnvOverridesDefault) {
  setenv("MECC_INSTRUCTIONS", "4242", 1);
  setenv("MECC_SEED", "7", 1);
  const SimOptions o = parse({});
  EXPECT_EQ(o.instructions, 4242u);
  EXPECT_EQ(o.seed, 7u);
}

TEST_F(OptionsTest, ArgvBeatsEnv) {
  setenv("MECC_INSTRUCTIONS", "4242", 1);
  const SimOptions o = parse({"--instructions=55"});
  EXPECT_EQ(o.instructions, 55u);
}

// A *recognized* flag with a malformed value is a hard parse error — the
// run must not continue silently on a default the user did not ask for.
TEST_F(OptionsTest, MalformedValuesRejected) {
  std::string error;
  EXPECT_FALSE(parse_checked({"--instructions=abc"}, &error).has_value());
  EXPECT_NE(error.find("--instructions"), std::string::npos);
  EXPECT_FALSE(parse_checked({"--seed=1x"}, &error).has_value());
  EXPECT_NE(error.find("--seed"), std::string::npos);
  EXPECT_FALSE(parse_checked({"--seed=-3"}).has_value());
  EXPECT_FALSE(parse_checked({"--instructions="}).has_value());
}

TEST_F(OptionsTest, ZeroInstructionsRejected) {
  EXPECT_FALSE(parse_checked({"--instructions=0"}).has_value());
}

TEST_F(OptionsTest, MalformedEnvRejected) {
  setenv("MECC_INSTRUCTIONS", "12cats", 1);
  std::string error;
  EXPECT_FALSE(parse_checked({}, &error).has_value());
  EXPECT_NE(error.find("MECC_INSTRUCTIONS"), std::string::npos);
}

TEST_F(OptionsTest, UnknownFlagsIgnored) {
  const SimOptions o = parse({"--benchmark_filter=foo", "-v"}, 99);
  EXPECT_EQ(o.instructions, 99u);
}

TEST_F(OptionsTest, JobsDefaultsToHardwareConcurrency) {
  const SimOptions o = parse({});
  EXPECT_GE(o.jobs, 1u);  // hardware_concurrency, floored at 1
}

TEST_F(OptionsTest, JobsArgvOverride) {
  const SimOptions o = parse({"--jobs=3"});
  EXPECT_EQ(o.jobs, 3u);
}

TEST_F(OptionsTest, JobsEnvOverride) {
  setenv("MECC_JOBS", "5", 1);
  const SimOptions o = parse({});
  EXPECT_EQ(o.jobs, 5u);
}

TEST_F(OptionsTest, JobsArgvBeatsEnv) {
  setenv("MECC_JOBS", "5", 1);
  const SimOptions o = parse({"--jobs=2"});
  EXPECT_EQ(o.jobs, 2u);
}

TEST_F(OptionsTest, JobsZeroAndMalformedRejected) {
  std::string error;
  EXPECT_FALSE(parse_checked({"--jobs=0"}, &error).has_value());
  EXPECT_NE(error.find("--jobs"), std::string::npos);
  EXPECT_FALSE(parse_checked({"--jobs=abc"}).has_value());
  setenv("MECC_JOBS", "junk", 1);
  EXPECT_FALSE(parse_checked({}).has_value());
}

TEST_F(OptionsTest, BerParsedAndRangeChecked) {
  const SimOptions o = parse({"--ber=1e-3"});
  EXPECT_DOUBLE_EQ(o.ber, 1e-3);
  EXPECT_DOUBLE_EQ(parse({"--ber=0"}).ber, 0.0);
  EXPECT_DOUBLE_EQ(parse({"--ber=1"}).ber, 1.0);
  std::string error;
  EXPECT_FALSE(parse_checked({"--ber=-0.5"}, &error).has_value());
  EXPECT_NE(error.find("--ber"), std::string::npos);
  EXPECT_FALSE(parse_checked({"--ber=1.5"}).has_value());
  EXPECT_FALSE(parse_checked({"--ber=nanobots"}).has_value());
}

TEST_F(OptionsTest, OutParsedAndEmptyRejected) {
  const SimOptions o = parse({"--out=report.json"});
  EXPECT_EQ(o.out, "report.json");
  EXPECT_EQ(parse({"--out=-"}).out, "-");
  std::string error;
  EXPECT_FALSE(parse_checked({"--out="}, &error).has_value());
  EXPECT_NE(error.find("--out"), std::string::npos);
}

// --- refresh scheduling knobs (docs/SCHEDULING.md) ---

TEST_F(OptionsTest, RefreshPolicyParsed) {
  EXPECT_EQ(parse({}).refresh_policy, RefreshPolicyOption::kStrict);
  EXPECT_EQ(parse({"--refresh-policy=strict"}).refresh_policy,
            RefreshPolicyOption::kStrict);
  EXPECT_EQ(parse({"--refresh-policy=elastic"}).refresh_policy,
            RefreshPolicyOption::kElastic);
  EXPECT_EQ(parse({"--refresh-policy=darp"}).refresh_policy,
            RefreshPolicyOption::kDarp);
  EXPECT_EQ(parse({"--refresh-policy=darp-sarp"}).refresh_policy,
            RefreshPolicyOption::kDarpSarp);
}

TEST_F(OptionsTest, RefreshGranularityParsed) {
  EXPECT_EQ(parse({}).refresh_granularity,
            RefreshGranularityOption::kAllBank);
  EXPECT_EQ(parse({"--refresh-granularity=all-bank"}).refresh_granularity,
            RefreshGranularityOption::kAllBank);
  EXPECT_EQ(parse({"--refresh-granularity=per-bank"}).refresh_granularity,
            RefreshGranularityOption::kPerBank);
}

TEST_F(OptionsTest, RefreshKnobsFromEnv) {
  setenv("MECC_REFRESH_POLICY", "darp", 1);
  setenv("MECC_REFRESH_GRANULARITY", "per-bank", 1);
  const SimOptions o = parse({});
  EXPECT_EQ(o.refresh_policy, RefreshPolicyOption::kDarp);
  EXPECT_EQ(o.refresh_granularity, RefreshGranularityOption::kPerBank);
}

TEST_F(OptionsTest, MalformedRefreshKnobsRejected) {
  std::string error;
  EXPECT_FALSE(parse_checked({"--refresh-policy=bogus"}, &error).has_value());
  EXPECT_NE(error.find("--refresh-policy"), std::string::npos);
  // Spellings from the literature that we deliberately do not accept.
  EXPECT_FALSE(parse_checked({"--refresh-policy=sarp"}).has_value());
  EXPECT_FALSE(parse_checked({"--refresh-policy=STRICT"}).has_value());
  EXPECT_FALSE(parse_checked({"--refresh-policy="}).has_value());
  EXPECT_FALSE(
      parse_checked({"--refresh-granularity=bank"}, &error).has_value());
  EXPECT_NE(error.find("--refresh-granularity"), std::string::npos);
  EXPECT_FALSE(parse_checked({"--refresh-granularity=rank"}).has_value());
  setenv("MECC_REFRESH_POLICY", "junk", 1);
  EXPECT_FALSE(parse_checked({}, &error).has_value());
  EXPECT_NE(error.find("MECC_REFRESH_POLICY"), std::string::npos);
}

TEST_F(OptionsTest, ApplyRefreshOptionsMapsOntoControllerConfig) {
  // The mapping the benches rely on (bench/bench_util.h): granularity
  // first, then the policy; darp implies per-bank regardless of the
  // granularity flag.
  memctrl::ControllerConfig cc;
  apply_refresh_options(parse({}), cc);
  EXPECT_EQ(cc.refresh_granularity, memctrl::RefreshGranularity::kAllBank);
  EXPECT_FALSE(cc.elastic_refresh);
  EXPECT_FALSE(cc.darp);
  EXPECT_FALSE(cc.sarp);

  cc = {};
  apply_refresh_options(parse({"--refresh-policy=elastic"}), cc);
  EXPECT_TRUE(cc.elastic_refresh);
  EXPECT_EQ(cc.refresh_granularity, memctrl::RefreshGranularity::kAllBank);

  cc = {};
  apply_refresh_options(parse({"--refresh-granularity=per-bank"}), cc);
  EXPECT_EQ(cc.refresh_granularity, memctrl::RefreshGranularity::kPerBank);
  EXPECT_FALSE(cc.darp);

  cc = {};
  apply_refresh_options(parse({"--refresh-policy=darp"}), cc);
  EXPECT_EQ(cc.refresh_granularity, memctrl::RefreshGranularity::kPerBank);
  EXPECT_TRUE(cc.darp);
  EXPECT_FALSE(cc.sarp);

  cc = {};
  apply_refresh_options(parse({"--refresh-policy=darp-sarp"}), cc);
  EXPECT_EQ(cc.refresh_granularity, memctrl::RefreshGranularity::kPerBank);
  EXPECT_TRUE(cc.darp);
  EXPECT_TRUE(cc.sarp);
}

// --- consumed-argv reporting (the bench shared-flag strip contract) ---

TEST_F(OptionsTest, EveryRecognizedFlagIsReportedConsumed) {
  // The complete shared-flag surface. A flag missing from `consumed`
  // here is exactly the bug that leaked --fast-forward= etc. into
  // benchmark::Initialize in bench_ecc_codec.
  const std::vector<const char*> shared = {
      "--instructions=10",  "--seed=2",
      "--jobs=1",           "--ber=0.001",
      "--out=-",            "--perf-out=p.json",
      "--fast-forward=off", "--refresh-policy=darp",
      "--refresh-granularity=per-bank", "--trace=-",
      "--trace-categories=dram", "--trace-limit=4",
      "--metrics-out=-",    "--metrics-interval=100",
      "--metrics-keys=power", "--list-stats",
      "--channels=2",       "--ranks=2",
      "--interleave=line",  "--streams=2",
      "--channel-parallel=0",
  };
  std::vector<bool> consumed;
  const auto o = parse_checked(shared, nullptr, 1000, &consumed);
  ASSERT_TRUE(o.has_value());
  ASSERT_EQ(consumed.size(), shared.size() + 1);  // + argv[0]
  EXPECT_FALSE(consumed[0]);  // the program name is never consumed
  for (std::size_t i = 1; i < consumed.size(); ++i) {
    EXPECT_TRUE(consumed[i]) << "flag not reported consumed: "
                             << shared[i - 1];
  }
}

TEST_F(OptionsTest, ForeignFlagsAreReportedUnconsumed) {
  std::vector<bool> consumed;
  const auto o = parse_checked({"--benchmark_filter=BM_Bch", "--seed=4",
                                "--benchmark_out=x.json", "-v", "positional"},
                               nullptr, 1000, &consumed);
  ASSERT_TRUE(o.has_value());
  ASSERT_EQ(consumed.size(), 6u);
  EXPECT_FALSE(consumed[1]);  // --benchmark_filter=
  EXPECT_TRUE(consumed[2]);   // --seed=
  EXPECT_FALSE(consumed[3]);  // --benchmark_out=
  EXPECT_FALSE(consumed[4]);  // -v
  EXPECT_FALSE(consumed[5]);  // positional
}

TEST_F(OptionsTest, PrefixLookalikesAreNotConsumed) {
  // A flag must match "--name=" as a prefix; bare "--seed" (no '=') and
  // "--seeds=1" are somebody else's flags.
  std::vector<bool> consumed;
  const auto o =
      parse_checked({"--seed", "--seeds=1"}, nullptr, 1000, &consumed);
  ASSERT_TRUE(o.has_value());
  EXPECT_FALSE(consumed[1]);
  EXPECT_FALSE(consumed[2]);
  EXPECT_EQ(o->seed, 1u);  // untouched default
}

// ---- geometry options (docs/SCALING.md) ----

TEST_F(OptionsTest, GeometryFlagsParse) {
  const SimOptions o = parse({"--channels=4", "--ranks=2",
                              "--interleave=bank-xor", "--streams=3",
                              "--channel-parallel=2"});
  EXPECT_EQ(o.channels, 4u);
  EXPECT_EQ(o.ranks, 2u);
  EXPECT_EQ(o.interleave, memctrl::Interleave::kBankXor);
  EXPECT_EQ(o.streams, 3u);
  EXPECT_EQ(o.channel_parallel, 2u);
}

TEST_F(OptionsTest, GeometryDefaultsLeaveSingleChannel) {
  const SimOptions o = parse({});
  EXPECT_EQ(o.channels, 0u);  // 0 = "not set": keep the config's geometry
  EXPECT_EQ(o.ranks, 1u);
  EXPECT_EQ(o.interleave, memctrl::Interleave::kLine);
  EXPECT_EQ(o.streams, 1u);
}

TEST_F(OptionsTest, GeometryEnvOverrides) {
  setenv("MECC_CHANNELS", "8", 1);
  setenv("MECC_RANKS", "2", 1);
  setenv("MECC_INTERLEAVE", "row", 1);
  setenv("MECC_STREAMS", "4", 1);
  const SimOptions o = parse({});
  EXPECT_EQ(o.channels, 8u);
  EXPECT_EQ(o.ranks, 2u);
  EXPECT_EQ(o.interleave, memctrl::Interleave::kRow);
  EXPECT_EQ(o.streams, 4u);
  // argv still beats env.
  const SimOptions o2 = parse({"--channels=2", "--interleave=line"});
  EXPECT_EQ(o2.channels, 2u);
  EXPECT_EQ(o2.interleave, memctrl::Interleave::kLine);
}

TEST_F(OptionsTest, MalformedGeometryValuesRejected) {
  std::string error;
  EXPECT_FALSE(parse_checked({"--channels=0"}, &error).has_value());
  EXPECT_NE(error.find("--channels"), std::string::npos);
  EXPECT_FALSE(parse_checked({"--channels=65"}).has_value());
  EXPECT_FALSE(parse_checked({"--channels=two"}).has_value());
  EXPECT_FALSE(parse_checked({"--ranks=0"}).has_value());
  EXPECT_FALSE(parse_checked({"--ranks=9"}).has_value());
  EXPECT_FALSE(parse_checked({"--streams=0"}).has_value());
  EXPECT_FALSE(parse_checked({"--interleave=diagonal"}, &error).has_value());
  EXPECT_NE(error.find("--interleave"), std::string::npos);
  EXPECT_FALSE(parse_checked({"--channel-parallel=x"}).has_value());
}

TEST_F(OptionsTest, MalformedGeometryEnvRejected) {
  setenv("MECC_INTERLEAVE", "spiral", 1);
  std::string error;
  EXPECT_FALSE(parse_checked({}, &error).has_value());
  EXPECT_NE(error.find("MECC_INTERLEAVE"), std::string::npos);
}

TEST_F(OptionsTest, MalformedRecognizedFlagStillConsumedOnFailure) {
  // Even when the parse fails, the offending argv slot was recognized —
  // callers exit on the error, but the report must never claim a
  // recognized flag belongs to a downstream parser.
  std::vector<bool> consumed;
  std::string error;
  EXPECT_FALSE(
      parse_checked({"--jobs=zero"}, &error, 1000, &consumed).has_value());
  ASSERT_EQ(consumed.size(), 2u);
  EXPECT_TRUE(consumed[1]);
}

}  // namespace
}  // namespace mecc::sim
