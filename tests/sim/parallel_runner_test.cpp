// Determinism guarantees of the parallel suite runner: sharding the
// 28-benchmark sweep across N workers must be invisible in the simulated
// output (see the seeding/independence note in sim/experiment.h).
#include <gtest/gtest.h>

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "sim/experiment.h"

namespace mecc::sim {
namespace {

[[nodiscard]] SystemConfig tiny_config() {
  SystemConfig c;
  c.instructions = 50'000;  // keep the 28x-per-policy sweeps fast
  c.seed = 7;
  return c;
}

void expect_same_results(const std::vector<RunResult>& a,
                         const std::vector<RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(same_simulated_result(a[i], b[i]))
        << a[i].benchmark << " differs between runs";
    // Spot-check the headline fields bitwise too, so a bug in
    // same_simulated_result cannot silently pass the suite comparison.
    EXPECT_EQ(a[i].benchmark, b[i].benchmark);
    EXPECT_EQ(a[i].cpu_cycles, b[i].cpu_cycles);
    EXPECT_EQ(a[i].ipc, b[i].ipc);
    EXPECT_EQ(a[i].energy.total_mj(), b[i].energy.total_mj());
    EXPECT_EQ(a[i].stats.counters(), b[i].stats.counters());
  }
}

TEST(ParallelRunner, BitIdenticalToSerialForBaseline) {
  const SystemConfig cfg = tiny_config();
  expect_same_results(run_suite(EccPolicy::kNoEcc, cfg),
                      run_suite_parallel(EccPolicy::kNoEcc, cfg, 8));
}

TEST(ParallelRunner, BitIdenticalToSerialForMecc) {
  const SystemConfig cfg = tiny_config();
  expect_same_results(run_suite(EccPolicy::kMecc, cfg),
                      run_suite_parallel(EccPolicy::kMecc, cfg, 8));
}

TEST(ParallelRunner, TwoParallelRunsWithSameSeedAgree) {
  const SystemConfig cfg = tiny_config();
  expect_same_results(run_suite_parallel(EccPolicy::kEcc6, cfg, 8),
                      run_suite_parallel(EccPolicy::kEcc6, cfg, 3));
}

TEST(ParallelRunner, ResultsComeBackInCanonicalOrder) {
  const SystemConfig cfg = tiny_config();
  const auto results = run_suite_parallel(EccPolicy::kNoEcc, cfg, 8);
  const auto benchmarks = trace::all_benchmarks();
  ASSERT_EQ(results.size(), benchmarks.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].benchmark, std::string(benchmarks[i].name));
  }
}

TEST(ParallelRunner, DifferentSeedsChangeTheOutput) {
  SystemConfig cfg = tiny_config();
  const auto a = run_suite_parallel(EccPolicy::kNoEcc, cfg, 4);
  cfg.seed = 12345;
  const auto b = run_suite_parallel(EccPolicy::kNoEcc, cfg, 4);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!same_simulated_result(a[i], b[i])) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ParallelRunner, RunJobsPreservesJobOrderAcrossPolicies) {
  const SystemConfig cfg = tiny_config();
  const auto benchmarks = trace::all_benchmarks();
  // A small cross product: 2 policies x first 6 benchmarks.
  std::vector<SuiteJob> jobs;
  for (EccPolicy p : {EccPolicy::kNoEcc, EccPolicy::kSecded}) {
    for (std::size_t i = 0; i < 6; ++i) {
      SuiteJob j;
      j.profile = &benchmarks[i];
      j.policy = p;
      j.config = cfg;
      j.config.seed = suite_seed(cfg.seed, i);
      jobs.push_back(j);
    }
  }
  const auto par = run_jobs(jobs, 8);
  const auto ser = run_jobs(jobs, 1);
  ASSERT_EQ(par.size(), jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    EXPECT_EQ(par[k].benchmark, std::string(jobs[k].profile->name));
    EXPECT_EQ(par[k].policy, jobs[k].policy);
    EXPECT_TRUE(same_simulated_result(par[k], ser[k]));
  }
}

TEST(ParallelRunner, ProgressReportsEveryCompletion) {
  const SystemConfig cfg = tiny_config();
  std::mutex mu;
  std::size_t calls = 0;
  std::size_t max_total = 0;
  const auto results = run_suite_parallel(
      EccPolicy::kNoEcc, cfg, 4,
      [&](const RunResult& r, std::size_t done, std::size_t total) {
        // The runner already serializes progress callbacks; the lock
        // here just keeps the test's own bookkeeping well-defined.
        const std::lock_guard<std::mutex> lock(mu);
        ++calls;
        EXPECT_EQ(done, calls);
        EXPECT_GT(r.wall_seconds, 0.0);
        max_total = total;
      });
  EXPECT_EQ(calls, results.size());
  EXPECT_EQ(max_total, results.size());
}

TEST(ParallelRunner, WallClockFieldsAreStamped) {
  const SystemConfig cfg = tiny_config();
  for (const auto& r : run_suite_parallel(EccPolicy::kNoEcc, cfg, 4)) {
    EXPECT_GT(r.wall_seconds, 0.0) << r.benchmark;
    EXPECT_GT(r.wall_mips, 0.0) << r.benchmark;
  }
}

}  // namespace
}  // namespace mecc::sim
