// Tests for the machine-readable bench output (sim/run_json.h): snapshot
// stability (byte-identical JSON for identical runs), the serial-vs-
// parallel registry equality the --out= contract promises, and the
// schema versioning compare_stats.py keys on.
#include "sim/run_json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "sim/experiment.h"
#include "sim/system.h"
#include "trace/benchmarks.h"

namespace mecc::sim {
namespace {

SystemConfig small_config() {
  SystemConfig cfg;
  cfg.instructions = 60'000;
  cfg.seed = 7;
  return cfg;
}

TEST(RunJson, IdenticalRunsSerializeByteIdentically) {
  const auto& b = trace::benchmark("milc");
  const RunResult r1 = run_benchmark(b, EccPolicy::kMecc, small_config());
  const RunResult r2 = run_benchmark(b, EccPolicy::kMecc, small_config());

  JsonWriter w1;
  run_result_json(w1, r1);
  JsonWriter w2;
  run_result_json(w2, r2);
  EXPECT_EQ(w1.str(), w2.str());
  EXPECT_FALSE(w1.str().empty());
}

TEST(RunJson, WallClockFieldsAreExcluded) {
  // wall_seconds / wall_mips are host-dependent; the determinism
  // contract keeps them out of the serialized form.
  const auto& b = trace::benchmark("libquantum");
  RunResult r = run_benchmark(b, EccPolicy::kSecded, small_config());
  JsonWriter w;
  run_result_json(w, r);
  const std::string json = w.str();
  EXPECT_EQ(json.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(json.find("wall_mips"), std::string::npos);
  // ...while the simulated payload is present.
  EXPECT_NE(json.find("\"ipc\""), std::string::npos);
  EXPECT_NE(json.find("\"stats\""), std::string::npos);
  EXPECT_NE(json.find("memctrl.refreshes"), std::string::npos);
}

TEST(RunJson, SerialAndParallelSuitesEmitIdenticalJson) {
  // The ISSUE acceptance case: a registry snapshot must be bit-identical
  // between --jobs=1 and --jobs=8, enforced at the serialized-JSON level
  // (which covers every simulated field, stats included).
  SystemConfig cfg = small_config();
  cfg.instructions = 25'000;
  const auto serial = run_suite_parallel(EccPolicy::kMecc, cfg, 1);
  const auto parallel = run_suite_parallel(EccPolicy::kMecc, cfg, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(same_simulated_result(serial[i], parallel[i]))
        << serial[i].benchmark;
    JsonWriter ws;
    run_result_json(ws, serial[i]);
    JsonWriter wp;
    run_result_json(wp, parallel[i]);
    EXPECT_EQ(ws.str(), wp.str()) << serial[i].benchmark;
  }
}

TEST(RunJson, BenchReportCarriesSchemaVersion) {
  BenchReport report;
  report.bench = "unit_test";
  report.instructions = 1234;
  report.seed = 5;
  report.scalars.emplace_back("alpha", 1.5);
  const std::string json = bench_report_json(report);
  EXPECT_NE(
      json.find("\"schema_version\": " + std::to_string(kStatsSchemaVersion)),
      std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\": 1.5"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(RunJson, BenchReportIsStableAcrossCalls) {
  const auto& b = trace::benchmark("astar");
  BenchReport report;
  report.bench = "stability";
  report.seed = 7;
  report.suites.emplace_back(
      "one", std::vector<RunResult>{
                 run_benchmark(b, EccPolicy::kEcc6, small_config())});
  const std::string a = bench_report_json(report);
  const std::string c = bench_report_json(report);
  EXPECT_EQ(a, c);
}

TEST(RunJson, WriteBenchReportRoundTripsThroughAFile) {
  BenchReport report;
  report.bench = "file_round_trip";
  report.scalars.emplace_back("x", 2.0);
  const std::string path = ::testing::TempDir() + "run_json_test_out.json";
  ASSERT_TRUE(write_bench_report(report, path));
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), bench_report_json(report));
  std::remove(path.c_str());
}

TEST(RunJson, WriteBenchReportFailsOnUnwritablePath) {
  BenchReport report;
  report.bench = "nope";
  EXPECT_FALSE(
      write_bench_report(report, "/nonexistent-dir-xyz/out.json"));
}

TEST(RunJson, NonFiniteGaugesSerializeAsNull) {
  RunResult r;
  r.benchmark = "synthetic";
  r.stats.set_gauge("bad_gauge", std::numeric_limits<double>::quiet_NaN());
  JsonWriter w;
  run_result_json(w, r);
  EXPECT_NE(w.str().find("\"bad_gauge\": null"), std::string::npos);
}

}  // namespace
}  // namespace mecc::sim
