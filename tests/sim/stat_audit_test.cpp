// Counter-audit suite (docs/OBSERVABILITY.md): a clean run's trace and
// stats snapshot must agree on every audited invariant family, and a
// deliberately skewed counter must fail the audit with a message that
// names the exact key (the same self-test bench_stat_audit's
// --audit-selftest flag runs in tier 1).
#include "sim/stat_audit.h"

#include <gtest/gtest.h>

#include <string>

namespace mecc::sim {
namespace {

/// Small but representative shape: long enough for command traffic in
/// every audited family, short enough for a unit test.
[[nodiscard]] AuditOptions small_audit() {
  AuditOptions o;
  o.config.policy = EccPolicy::kMecc;
  o.config.instructions = 5000;
  return o;
}

TEST(StatAudit, CleanRunPassesEveryInvariant) {
  const AuditResult r = audit_system_run(small_audit());
  for (const std::string& f : r.failures) {
    ADD_FAILURE() << "audit inconsistency: " << f;
  }
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.checks, 0u);
  EXPECT_GT(r.events_replayed, 0u);
}

TEST(StatAudit, SkewedCounterFailsNamingTheKey) {
  AuditOptions o = small_audit();
  o.skew_key = "dram.activates";
  const AuditResult r = audit_system_run(o);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.failures.empty());
  bool named = false;
  for (const std::string& f : r.failures) {
    named = named || f.find("dram.activates") != std::string::npos;
  }
  EXPECT_TRUE(named) << "no failure message named the skewed key; first: "
                     << r.failures.front();
}

TEST(StatAudit, ErrorsFamilyIsAuditedWithoutAFaultCampaign) {
  // The errors.* checks must hold (trivially, both sides zero) even
  // with no fault campaign configured, so a skew there is still caught.
  AuditOptions o = small_audit();
  o.skew_key = "errors.retries";
  const AuditResult r = audit_system_run(o);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.failures.empty());
  EXPECT_NE(r.failures.front().find("errors.retries"), std::string::npos);
}

TEST(StatAudit, MultiChannelMultiRankRunAuditsClean) {
  AuditOptions o = small_audit();
  o.config.geometry.channels = 2;
  o.config.geometry.ranks = 2;
  const AuditResult r = audit_system_run(o);
  for (const std::string& f : r.failures) {
    ADD_FAILURE() << "audit inconsistency: " << f;
  }
  EXPECT_TRUE(r.ok);
}

}  // namespace
}  // namespace mecc::sim
