#include "sim/system.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/experiment.h"
#include "trace/file_trace.h"

namespace mecc::sim {
namespace {

SystemConfig quick_config(InstCount insts = 1'000'000) {
  SystemConfig c;
  c.instructions = insts;
  return c;
}

TEST(System, BaselineIpcTracksPaperIpc) {
  for (const char* name : {"gamess", "astar", "milc"}) {
    const auto& b = trace::benchmark(name);
    const RunResult r = run_benchmark(b, EccPolicy::kNoEcc,
                                      quick_config(4'000'000));
    EXPECT_NEAR(r.ipc / b.paper_ipc, 1.0, 0.15) << name;
  }
}

TEST(System, MeasuredMpkiTracksProfile) {
  const auto& b = trace::benchmark("soplex");
  const RunResult r = run_benchmark(b, EccPolicy::kNoEcc,
                                    quick_config(4'000'000));
  EXPECT_NEAR(r.measured_mpki / b.mpki, 1.0, 0.10);
}

TEST(System, PolicyOrderingOnMemoryIntensiveWorkload) {
  // IPC: NoECC >= SECDED >= MECC > ECC-6 for a high-MPKI benchmark.
  const auto& b = trace::benchmark("libquantum");
  const SystemConfig c = quick_config(2'000'000);
  const double base = run_benchmark(b, EccPolicy::kNoEcc, c).ipc;
  const double sec = run_benchmark(b, EccPolicy::kSecded, c).ipc;
  const double e6 = run_benchmark(b, EccPolicy::kEcc6, c).ipc;
  const double mecc = run_benchmark(b, EccPolicy::kMecc, c).ipc;
  EXPECT_GE(base, sec);
  EXPECT_GT(sec, e6);
  EXPECT_GT(mecc, e6);
  // ECC-6 slowdown is substantial for libquantum (paper: 21%).
  EXPECT_LT(e6 / base, 0.92);
  // SECDED is nearly free (paper: ~0.5% average).
  EXPECT_GT(sec / base, 0.98);
}

TEST(System, EccLatencyIrrelevantForComputeBoundWorkload) {
  const auto& b = trace::benchmark("gamess");
  const SystemConfig c = quick_config(2'000'000);
  const double base = run_benchmark(b, EccPolicy::kNoEcc, c).ipc;
  const double e6 = run_benchmark(b, EccPolicy::kEcc6, c).ipc;
  EXPECT_GT(e6 / base, 0.99);
}

TEST(System, MeccDowngradesOncePerLine) {
  const auto& b = trace::benchmark("libquantum");
  const RunResult r = run_benchmark(b, EccPolicy::kMecc,
                                    quick_config(2'000'000));
  EXPECT_GT(r.downgrades, 0u);
  EXPECT_GT(r.strong_decodes, 0u);
  EXPECT_GT(r.weak_decodes, r.strong_decodes);  // re-use dominates
  // Strong decodes happen at most once per line read (plus none after).
  EXPECT_LE(r.strong_decodes, r.reads);
}

TEST(System, Ecc6DecodeLatencySweepMonotonic) {
  const auto& b = trace::benchmark("milc");
  SystemConfig c = quick_config(1'000'000);
  double prev_ipc = 1e9;
  for (Cycle lat : {15u, 30u, 60u}) {
    c.ecc6_decode_cycles = lat;
    const double ipc = run_benchmark(b, EccPolicy::kEcc6, c).ipc;
    EXPECT_LT(ipc, prev_ipc);
    prev_ipc = ipc;
  }
}

TEST(System, MeccInsensitiveToDecodeLatency) {
  // Fig. 12: MECC barely moves with decode latency while ECC-6 degrades.
  // libquantum re-uses lines heavily, so the one-time ECC-6 decode
  // amortizes even in a short slice.
  const auto& b = trace::benchmark("libquantum");
  SystemConfig c = quick_config(4'000'000);
  const double base = run_benchmark(b, EccPolicy::kNoEcc, c).ipc;
  c.ecc6_decode_cycles = 60;
  const double mecc60 = run_benchmark(b, EccPolicy::kMecc, c).ipc;
  const double ecc6_60 = run_benchmark(b, EccPolicy::kEcc6, c).ipc;
  EXPECT_GT(mecc60 / base, 0.90);
  EXPECT_LT(ecc6_60 / base, mecc60 / base);
}

TEST(System, CheckpointsRecordProgress) {
  const auto& b = trace::benchmark("astar");
  SystemConfig c = quick_config(1'000'000);
  c.checkpoint_insts = {250'000, 500'000, 750'000};
  const RunResult r = run_benchmark(b, EccPolicy::kMecc, c);
  ASSERT_EQ(r.checkpoints.size(), 3u);
  EXPECT_LT(r.checkpoints[0].cycles, r.checkpoints[1].cycles);
  EXPECT_LT(r.checkpoints[1].cycles, r.checkpoints[2].cycles);
  EXPECT_LE(r.checkpoints[2].cycles, r.cpu_cycles);
}

TEST(System, MeccEarlySlowdownShrinksOverTime) {
  // Fig. 13: the ECC-6 first-touch cost concentrates early in the run.
  const auto& b = trace::benchmark("milc");
  SystemConfig c = quick_config(4'000'000);
  c.checkpoint_insts = {500'000, 4'000'000};
  const RunResult base = run_benchmark(b, EccPolicy::kNoEcc, c);
  const RunResult mecc = run_benchmark(b, EccPolicy::kMecc, c);
  ASSERT_EQ(base.checkpoints.size(), 2u);
  ASSERT_EQ(mecc.checkpoints.size(), 2u);
  const double early = static_cast<double>(base.checkpoints[0].cycles) /
                       static_cast<double>(mecc.checkpoints[0].cycles);
  const double late = static_cast<double>(base.checkpoints[1].cycles) /
                      static_cast<double>(mecc.checkpoints[1].cycles);
  EXPECT_LT(early, late);  // normalized IPC improves as the run goes on
}

TEST(System, SmdKeepsLowMpkiWorkloadFullyStrong) {
  const auto& b = trace::benchmark("povray");
  SystemConfig c = quick_config(1'000'000);
  c.mecc_use_smd = true;
  c.smd_quantum_cycles = 100'000;
  const RunResult r = run_benchmark(b, EccPolicy::kMecc, c);
  EXPECT_EQ(r.downgrades, 0u);
  EXPECT_DOUBLE_EQ(r.frac_downgrade_disabled, 1.0);
}

TEST(System, SmdEnablesForHighMpkiWorkload) {
  const auto& b = trace::benchmark("lbm");
  SystemConfig c = quick_config(1'000'000);
  c.mecc_use_smd = true;
  c.smd_quantum_cycles = 100'000;
  const RunResult r = run_benchmark(b, EccPolicy::kMecc, c);
  EXPECT_GT(r.downgrades, 0u);
  EXPECT_LT(r.frac_downgrade_disabled, 0.2);
}

TEST(System, MdtTrackedBytesApproximateFootprint) {
  const auto& b = trace::benchmark("milc");  // 340 MB, scaled to 3.4 MB
  const RunResult r = run_benchmark(b, EccPolicy::kMecc,
                                    quick_config(2'000'000));
  EXPECT_GT(r.mdt_marked_regions, 0u);
  const double footprint_bytes = b.footprint_mb * 1024 * 1024 * 0.01;
  // MDT (1 MB regions over 1 GB) overestimates small footprints but must
  // be within a few regions of it.
  EXPECT_LE(r.mdt_tracked_bytes, footprint_bytes + 5 * (1 << 20));
}

TEST(System, EnergyBreakdownIsPositiveAndConsistent) {
  const auto& b = trace::benchmark("soplex");
  const RunResult r = run_benchmark(b, EccPolicy::kMecc,
                                    quick_config(1'000'000));
  EXPECT_GT(r.energy.background_mj, 0.0);
  EXPECT_GT(r.energy.read_mj, 0.0);
  EXPECT_GT(r.energy.write_mj, 0.0);
  EXPECT_GT(r.energy.activate_mj, 0.0);
  EXPECT_GT(r.energy.ecc_mj, 0.0);
  EXPECT_NEAR(r.energy.seconds, r.seconds, r.seconds * 0.01);
  // avg_power averages over the memory-clock view of the run; it agrees
  // with energy/cpu-seconds up to the clock-domain rounding.
  EXPECT_NEAR(r.avg_power_mw, r.energy.total_mj() / r.seconds,
              r.avg_power_mw * 0.01);
  EXPECT_NEAR(r.edp_mj_s, r.energy.total_mj() * r.seconds, 1e-9);
}

TEST(System, DeterministicAcrossRuns) {
  const auto& b = trace::benchmark("astar");
  const SystemConfig c = quick_config(500'000);
  const RunResult a = run_benchmark(b, EccPolicy::kMecc, c);
  const RunResult b2 = run_benchmark(b, EccPolicy::kMecc, c);
  EXPECT_EQ(a.cpu_cycles, b2.cpu_cycles);
  EXPECT_EQ(a.reads, b2.reads);
  EXPECT_EQ(a.downgrades, b2.downgrades);
  EXPECT_DOUBLE_EQ(a.energy.total_mj(), b2.energy.total_mj());
}

TEST(System, RefreshesHappenDuringActiveMode) {
  const auto& b = trace::benchmark("gamess");
  const RunResult r = run_benchmark(b, EccPolicy::kNoEcc,
                                    quick_config(1'000'000));
  EXPECT_GT(r.stats.counter("memctrl.refreshes"), 0u);
}

TEST(System, MultiChannelStatKeysAreNamespaced) {
  // docs/SCALING.md: multi-instance components get per-instance
  // prefixes (memctrl.ch0., dram.ch1., ...); the single-channel path
  // keeps the legacy unsuffixed names (previous test).
  const auto& b = trace::benchmark("lbm");
  SystemConfig c = quick_config(1'000'000);
  c.geometry.channels = 2;
  c.geometry.ranks = 2;
  const RunResult r = run_benchmark(b, EccPolicy::kNoEcc, c);
  EXPECT_GT(r.stats.counter("memctrl.ch0.refreshes"), 0u);
  EXPECT_GT(r.stats.counter("memctrl.ch1.refreshes"), 0u);
  // Line interleave spreads a streaming workload over both channels.
  EXPECT_GT(r.stats.counter("memctrl.ch0.reads_enqueued"), 0u);
  EXPECT_GT(r.stats.counter("memctrl.ch1.reads_enqueued"), 0u);
  // The legacy unsuffixed keys must NOT exist at 2 channels.
  EXPECT_EQ(r.stats.counter("memctrl.refreshes"), 0u);
  EXPECT_EQ(r.stats.counter("memctrl.reads_enqueued"), 0u);
}

TEST(System, MultiChannelDeterministicAndParallelBitIdentical) {
  const auto& b = trace::benchmark("lbm");
  SystemConfig c = quick_config(500'000);
  c.geometry.channels = 4;
  c.geometry.ranks = 2;
  c.streams = 2;
  const RunResult serial = run_benchmark(b, EccPolicy::kMecc, c);
  const RunResult again = run_benchmark(b, EccPolicy::kMecc, c);
  c.channel_threads = 4;
  const RunResult parallel = run_benchmark(b, EccPolicy::kMecc, c);
  EXPECT_EQ(serial.cpu_cycles, again.cpu_cycles);
  EXPECT_EQ(serial.cpu_cycles, parallel.cpu_cycles);
  EXPECT_EQ(serial.reads, parallel.reads);
  EXPECT_DOUBLE_EQ(serial.energy.total_mj(), parallel.energy.total_mj());
  for (const auto& [key, value] : serial.stats.counters()) {
    EXPECT_EQ(value, parallel.stats.counter(key)) << key;
  }
}

TEST(System, MoreChannelsRelieveBandwidthPressure) {
  // A memory-bound workload must not get slower when its traffic is
  // spread over more channels (and generally gets faster).
  const auto& b = trace::benchmark("lbm");
  SystemConfig c = quick_config(1'000'000);
  c.geometry.channels = 1;
  const double one = run_benchmark(b, EccPolicy::kNoEcc, c).ipc;
  c.geometry.channels = 4;
  const double four = run_benchmark(b, EccPolicy::kNoEcc, c).ipc;
  EXPECT_GE(four, one * 0.999);
}

TEST(System, ReplaysTraceFiles) {
  // Dump a synthetic trace, replay it through the full system, and check
  // the replay matches the workload's character.
  const std::string path = ::testing::TempDir() + "mecc_system_replay.trc";
  // Short phases so even the first 500k replayed instructions average
  // over the full MPKI phase schedule.
  trace::GeneratorSource src(
      trace::benchmark("astar"),
      trace::GeneratorConfig{.phase_length_insts = 50'000, .seed = 9});
  trace::write_trace_file(path, trace::capture(src, 20'000));

  SystemConfig c = quick_config(500'000);
  c.trace_file = path;
  const RunResult r =
      run_benchmark(trace::benchmark("astar"), EccPolicy::kMecc, c);
  std::remove(path.c_str());
  EXPECT_GT(r.ipc, 0.0);
  EXPECT_NEAR(r.measured_mpki / trace::benchmark("astar").mpki, 1.0, 0.25);
  EXPECT_GT(r.downgrades, 0u);
}

TEST(System, BaseIpcNeverExceedsWidth) {
  for (const auto& b : trace::all_benchmarks()) {
    System s(b, quick_config());
    EXPECT_LE(s.base_ipc(), 2.0) << b.name;
    EXPECT_GT(s.base_ipc(), 0.0) << b.name;
  }
}

}  // namespace
}  // namespace mecc::sim
