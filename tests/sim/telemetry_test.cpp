// Live telemetry hub suite (docs/OBSERVABILITY.md): progress-record
// round-trip, torn/foreign-line rejection, the complete-lines-only
// tailer, and the hub's merge/clamp/retire semantics — all host-side,
// driven through real files in a per-test temp dir.
#include "sim/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/fsio.h"
#include "common/stats.h"

namespace mecc::sim::fleet {
namespace {

/// Fresh per-test directory under the gtest tmpdir.
[[nodiscard]] std::string fresh_dir() {
  std::string templ = ::testing::TempDir() + "telemXXXXXX";
  const char* dir = ::mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

[[nodiscard]] ShardProgress sample_progress() {
  ShardProgress p;
  p.shard = 3;
  p.attempt = 2;
  p.devices_total = 50;
  p.devices_done = 17;
  p.done = false;
  p.due_events = 4;
  p.ce_events = 91;
  p.energy_mj_per_day_sum = 123.4375;
  for (int i = 1; i <= 16; ++i) {
    p.due_rate.record(0.25 * i);
    p.energy.record(30.0 + i);
  }
  return p;
}

TEST(ProgressRecord, RoundTripsExactly) {
  const ShardProgress p = sample_progress();
  ShardProgress q;
  ASSERT_TRUE(parse_progress_record(progress_record_json(p), &q));
  EXPECT_EQ(q.shard, p.shard);
  EXPECT_EQ(q.attempt, p.attempt);
  EXPECT_EQ(q.devices_total, p.devices_total);
  EXPECT_EQ(q.devices_done, p.devices_done);
  EXPECT_EQ(q.done, p.done);
  EXPECT_EQ(q.due_events, p.due_events);
  EXPECT_EQ(q.ce_events, p.ce_events);
  // Bit-exact: the serializer carries doubles as bit patterns.
  EXPECT_EQ(q.energy_mj_per_day_sum, p.energy_mj_per_day_sum);
  EXPECT_EQ(q.due_rate, p.due_rate);
  EXPECT_EQ(q.energy, p.energy);
}

TEST(ProgressRecord, FinalDoneRecordRoundTrips) {
  ShardProgress p = sample_progress();
  p.done = true;
  p.devices_done = p.devices_total;
  ShardProgress q;
  ASSERT_TRUE(parse_progress_record(progress_record_json(p), &q));
  EXPECT_TRUE(q.done);
  EXPECT_EQ(q.devices_done, q.devices_total);
}

TEST(ProgressRecord, RejectsTornAndForeignLines) {
  const std::string line = progress_record_json(sample_progress());
  ShardProgress q;
  // Every proper prefix is a torn append: all must be rejected.
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, line.size() / 4,
                          line.size() / 2, line.size() - 1}) {
    EXPECT_FALSE(parse_progress_record(line.substr(0, cut), &q))
        << "accepted a torn record cut at byte " << cut;
  }
  EXPECT_FALSE(parse_progress_record("{\"schema\":\"other-v1\"}", &q));
  EXPECT_FALSE(parse_progress_record("not json at all", &q));
}

TEST(ProgressTailer, DeliversOnlyCompleteLines) {
  const std::string dir = fresh_dir();
  const std::string path = dir + "/stream.jsonl";
  ProgressTailer tailer(path);

  // Missing file: quietly nothing (the worker has not started yet).
  EXPECT_TRUE(tailer.poll().empty());

  // A record raced mid-append stays buffered until its '\n' arrives.
  ASSERT_TRUE(append_file(path, "{\"half\":"));
  EXPECT_TRUE(tailer.poll().empty());
  ASSERT_TRUE(append_file(path, "1}\n{\"tail\":"));
  std::vector<std::string> lines = tailer.poll();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "{\"half\":1}");

  // Completing the second record delivers it whole, never torn.
  ASSERT_TRUE(append_file(path, "2}\n"));
  lines = tailer.poll();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "{\"tail\":2}");
  EXPECT_TRUE(tailer.poll().empty());
}

TEST(TelemetryHub, MergesLivePartialsAndClampsMonotone) {
  const std::string dir = fresh_dir();
  TelemetryHub::Config cfg;
  cfg.state_dir = dir;
  cfg.feed_path = dir + "/feed.jsonl";
  cfg.interval_s = 0.0;
  cfg.devices_total = 100;
  cfg.shards_total = 2;
  TelemetryHub hub(cfg);
  ASSERT_TRUE(hub.enabled());

  // A live shard's partial progress counts toward devices_done and its
  // partial sketches fold into the snapshot distribution.
  ShardProgress p = sample_progress();
  p.shard = 0;
  p.devices_done = 30;
  ASSERT_TRUE(append_file(progress_file(dir, 0),
                          progress_record_json(p) + "\n"));
  hub.poll_shard(0);
  TelemetryHub::CompletedAggregate done;
  hub.publish(1.0, done, /*shards_running=*/1, /*shards_pending=*/1,
              /*final_snapshot=*/false);
  EXPECT_EQ(hub.last_snapshot().devices_done, 30u);
  EXPECT_EQ(hub.last_snapshot().due_events, p.due_events);
  EXPECT_EQ(hub.last_snapshot().due_rate.count(), p.due_rate.count());

  // Retiring the shard (worker lost, its contribution now comes from
  // the orchestrator) must not make devices_done step backwards.
  hub.retire_shard(0);
  hub.publish(2.0, done, 0, 2, false);
  EXPECT_EQ(hub.last_snapshot().devices_done, 30u);

  // The tailer survives retirement: the retried shard's new records
  // are picked up from where its stream left off.
  p.attempt = 3;
  p.devices_done = 40;
  ASSERT_TRUE(append_file(progress_file(dir, 0),
                          progress_record_json(p) + "\n"));
  hub.poll_shard(0);
  hub.publish(3.0, done, 1, 1, false);
  EXPECT_EQ(hub.last_snapshot().devices_done, 40u);

  // Completed-shard accounting merges with the remaining live partial,
  // and the published total never exceeds devices_total.
  done.shards_done = 1;
  done.devices_done = 75;
  hub.publish(4.0, done, 1, 0, false);
  EXPECT_EQ(hub.last_snapshot().devices_done, 100u);
  EXPECT_EQ(hub.last_snapshot().shards_done, 1u);

  hub.publish(5.0, done, 0, 0, /*final_snapshot=*/true);
  EXPECT_TRUE(hub.last_snapshot().final_snapshot);

  // Every publish appended one mecc-telemetry-v1 feed line; the last
  // one carries the closing final flag.
  std::string feed;
  ASSERT_TRUE(read_file(cfg.feed_path, &feed));
  std::size_t lines = 0;
  for (char c : feed) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 5u);
  EXPECT_NE(feed.find(std::string("\"schema\":\"") + kTelemetrySchema + "\""),
            std::string::npos);
  EXPECT_NE(feed.find("\"final\":true"), std::string::npos);
}

TEST(TelemetryHub, StaleAttemptRecordsNeverRegressLivePartial) {
  const std::string dir = fresh_dir();
  TelemetryHub::Config cfg;
  cfg.state_dir = dir;
  cfg.feed_path = dir + "/feed.jsonl";
  cfg.interval_s = 0.0;
  cfg.devices_total = 100;
  cfg.shards_total = 2;
  TelemetryHub hub(cfg);

  // Attempt 2 reports 20 devices; a late-flushed record from the killed
  // attempt 1 claiming 35 must not win (it describes replaced work).
  ShardProgress fresh = sample_progress();
  fresh.shard = 0;
  fresh.attempt = 2;
  fresh.devices_done = 20;
  ShardProgress stale = fresh;
  stale.attempt = 1;
  stale.devices_done = 35;
  ASSERT_TRUE(append_file(progress_file(dir, 0),
                          progress_record_json(fresh) + "\n" +
                              progress_record_json(stale) + "\n"));
  hub.poll_shard(0);
  hub.publish(1.0, TelemetryHub::CompletedAggregate{}, 1, 1, false);
  EXPECT_EQ(hub.last_snapshot().devices_done, 20u);
}

TEST(TelemetryHub, DisabledHubPublishesNothing) {
  TelemetryHub::Config cfg;
  cfg.state_dir = fresh_dir();
  TelemetryHub hub(cfg);  // no feed, no dashboard
  EXPECT_FALSE(hub.enabled());
  EXPECT_FALSE(hub.due(1e9));
}

TEST(SnapshotJson, CarriesTheFullRequiredKeySet) {
  // scripts/mecc_top.py --validate requires exactly these keys on every
  // line; keep the serializer and the validator in lockstep.
  FleetSnapshot s;
  s.devices_total = 10;
  const std::string doc = snapshot_json(s);
  for (const char* key :
       {"schema", "t_s", "devices_total", "devices_done", "shards_total",
        "shards_done", "shards_degraded", "shards_running", "shards_pending",
        "coverage", "throughput_devices_per_s", "eta_s", "due_events",
        "ce_events", "energy_mj_per_day_sum", "sample_count",
        "due_per_year_p50", "due_per_year_p99", "due_per_year_p999",
        "energy_mj_per_day_p50", "energy_mj_per_day_p99", "retries",
        "workers_crashed", "final"}) {
    EXPECT_NE(doc.find(std::string("\"") + key + "\":"), std::string::npos)
        << "snapshot_json dropped required key '" << key << "'";
  }
}

}  // namespace
}  // namespace mecc::sim::fleet
