#include "sim/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace mecc::sim {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  constexpr int kTasks = 500;
  std::atomic<int> done{0};
  {
    ThreadPool pool(8);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), kTasks);
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, DisjointSlotWritesNeedNoLocking) {
  // The runner's usage pattern: task i writes only results[i].
  constexpr std::size_t kTasks = 1000;
  std::vector<std::uint64_t> results(kTasks, 0);
  ThreadPool pool(4);
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.submit([&results, i] { results[i] = i * i; });
  }
  pool.wait_idle();
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(ThreadPool, WaitIdleIsReusable) {
  std::atomic<int> done{0};
  ThreadPool pool(3);
  pool.wait_idle();  // idle pool: returns immediately
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), (round + 1) * 50);
  }
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, TasksCanSubmitFromWorkerThreads) {
  std::atomic<int> done{0};
  ThreadPool pool(4);
  for (int i = 0; i < 20; ++i) {
    pool.submit([&pool, &done] {
      done.fetch_add(1, std::memory_order_relaxed);
      pool.submit(
          [&done] { done.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 40);
}


TEST(ThreadPool, WaitIdleRethrowsFirstTaskException) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  pool.submit([] { throw std::runtime_error("task 0 failed"); });
  for (int i = 0; i < 50; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  // The remaining work still drains (no cancellation requested)...
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(done.load(), 50);
  EXPECT_EQ(pool.task_failures(), 1u);
  // ...and the rethrow cleared the slot: the pool is reusable.
  pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 51);
}

TEST(ThreadPool, LaterExceptionsAreCountedNotRetained) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.submit([i] { throw std::runtime_error("task " + std::to_string(i)); });
  }
  try {
    pool.wait_idle();
    FAIL() << "wait_idle() must rethrow";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(pool.task_failures(), 8u);
  // First exception was consumed; the other seven were only counted.
  pool.wait_idle();
}

TEST(ThreadPool, DestructorSwallowsPendingException) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("never observed"); });
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    // No wait_idle(): the destructor must drain without throwing.
  }
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPool, CancelDiscardsQueuedTasksButFinishesRunningOnes) {
  std::atomic<int> started{0};
  std::atomic<int> release{0};
  std::atomic<int> done{0};
  ThreadPool pool(2);
  for (int i = 0; i < 2; ++i) {
    pool.submit([&] {
      started.fetch_add(1);
      while (release.load() == 0) std::this_thread::yield();
      done.fetch_add(1);
    });
  }
  while (started.load() < 2) std::this_thread::yield();
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  EXPECT_FALSE(pool.cancelled());
  pool.cancel();
  EXPECT_TRUE(pool.cancelled());
  pool.submit([&done] { done.fetch_add(1); });  // no-op after cancel()
  release.store(1);
  pool.wait_idle();
  // Only the two in-flight tasks ran; every queued/late task was dropped.
  EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPool, CancelAfterExceptionStillRethrows) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  while (pool.task_failures() == 0) std::this_thread::yield();
  pool.cancel();  // cancel() discards queued work, never captured errors
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

}  // namespace
}  // namespace mecc::sim
