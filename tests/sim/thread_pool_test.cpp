#include "sim/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

namespace mecc::sim {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  constexpr int kTasks = 500;
  std::atomic<int> done{0};
  {
    ThreadPool pool(8);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), kTasks);
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, DisjointSlotWritesNeedNoLocking) {
  // The runner's usage pattern: task i writes only results[i].
  constexpr std::size_t kTasks = 1000;
  std::vector<std::uint64_t> results(kTasks, 0);
  ThreadPool pool(4);
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.submit([&results, i] { results[i] = i * i; });
  }
  pool.wait_idle();
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(ThreadPool, WaitIdleIsReusable) {
  std::atomic<int> done{0};
  ThreadPool pool(3);
  pool.wait_idle();  // idle pool: returns immediately
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), (round + 1) * 50);
  }
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, TasksCanSubmitFromWorkerThreads) {
  std::atomic<int> done{0};
  ThreadPool pool(4);
  for (int i = 0; i < 20; ++i) {
    pool.submit([&pool, &done] {
      done.fetch_add(1, std::memory_order_relaxed);
      pool.submit(
          [&done] { done.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 40);
}

}  // namespace
}  // namespace mecc::sim
