#include "trace/benchmarks.h"

#include <gtest/gtest.h>

#include <set>

namespace mecc::trace {
namespace {

TEST(Benchmarks, TwentyEightTotal) {
  EXPECT_EQ(all_benchmarks().size(), 28u);
}

TEST(Benchmarks, ClassSizes) {
  EXPECT_EQ(count_in_class(MpkiClass::kLow), 7u);
  EXPECT_EQ(count_in_class(MpkiClass::kMed), 10u);
  EXPECT_EQ(count_in_class(MpkiClass::kHigh), 11u);
}

TEST(Benchmarks, NamesUnique) {
  std::set<std::string_view> names;
  for (const auto& b : all_benchmarks()) {
    EXPECT_TRUE(names.insert(b.name).second) << b.name;
  }
}

TEST(Benchmarks, LookupByName) {
  EXPECT_EQ(benchmark("libquantum").klass, MpkiClass::kHigh);
  EXPECT_EQ(benchmark("povray").klass, MpkiClass::kLow);
  EXPECT_THROW((void)benchmark("mcf"), std::out_of_range);  // excluded (S IV-B)
}

struct ClassAverages {
  double ipc = 0.0;
  double mpki = 0.0;
  double footprint = 0.0;
};

ClassAverages averages(MpkiClass c) {
  ClassAverages a;
  std::size_t n = 0;
  for (const auto& b : all_benchmarks()) {
    if (b.klass != c) continue;
    a.ipc += b.paper_ipc;
    a.mpki += b.mpki;
    a.footprint += b.footprint_mb;
    ++n;
  }
  a.ipc /= static_cast<double>(n);
  a.mpki /= static_cast<double>(n);
  a.footprint /= static_cast<double>(n);
  return a;
}

TEST(Benchmarks, Table3LowClassAverages) {
  const auto a = averages(MpkiClass::kLow);
  EXPECT_NEAR(a.ipc, 1.514, 1e-3);
  EXPECT_NEAR(a.mpki, 0.3, 1e-3);
  EXPECT_NEAR(a.footprint, 26.0, 0.05);
}

TEST(Benchmarks, Table3MedClassAverages) {
  const auto a = averages(MpkiClass::kMed);
  EXPECT_NEAR(a.ipc, 0.887, 1e-3);
  EXPECT_NEAR(a.mpki, 4.7, 1e-3);
  EXPECT_NEAR(a.footprint, 96.4, 0.05);
}

TEST(Benchmarks, Table3HighClassAverages) {
  const auto a = averages(MpkiClass::kHigh);
  EXPECT_NEAR(a.ipc, 0.359, 1e-3);
  EXPECT_NEAR(a.mpki, 23.5, 0.05);
  EXPECT_NEAR(a.footprint, 259.1, 0.05);
}

TEST(Benchmarks, ClassesAreOrderedByMpki) {
  // Every High benchmark out-MPKIs every Low benchmark, etc.
  double low_max = 0.0;
  double med_min = 1e9;
  double med_max = 0.0;
  double high_min = 1e9;
  for (const auto& b : all_benchmarks()) {
    switch (b.klass) {
      case MpkiClass::kLow:
        low_max = std::max(low_max, b.mpki);
        break;
      case MpkiClass::kMed:
        med_min = std::min(med_min, b.mpki);
        med_max = std::max(med_max, b.mpki);
        break;
      case MpkiClass::kHigh:
        high_min = std::min(high_min, b.mpki);
        break;
    }
  }
  EXPECT_LT(low_max, 1.0);    // Table III: Low-MPKI < 1
  EXPECT_GE(med_min, 1.0);    // Med between 1 and 10
  EXPECT_LE(med_max, 10.0);
  EXPECT_GT(high_min, 10.0);  // High > 10
}

TEST(Benchmarks, ProfilesAreSane) {
  for (const auto& b : all_benchmarks()) {
    EXPECT_GT(b.mpki, 0.0) << b.name;
    EXPECT_GT(b.paper_ipc, 0.0) << b.name;
    EXPECT_LE(b.paper_ipc, 2.0) << b.name;  // 2-wide core
    EXPECT_GT(b.footprint_mb, 0.0) << b.name;
    EXPECT_LT(b.footprint_mb, 1024.0) << b.name;  // fits in 1 GB (S IV-B)
    EXPECT_GT(b.read_fraction, 0.0) << b.name;
    EXPECT_LE(b.read_fraction, 1.0) << b.name;
    EXPECT_GE(b.row_locality, 0.0) << b.name;
    EXPECT_LT(b.row_locality, 1.0) << b.name;
  }
}

TEST(Benchmarks, LibquantumIsTheStreamingOutlier) {
  // Fig. 7: libquantum shows the worst ECC-6 slowdown (21%) - extreme
  // read-dominated streaming.
  const auto& libq = benchmark("libquantum");
  EXPECT_GE(libq.read_fraction, 0.9);
  EXPECT_GE(libq.row_locality, 0.8);
  EXPECT_GT(libq.mpki, 30.0);
}

TEST(Benchmarks, SmdSevenLowBenchmarksStayUnderThreshold) {
  // Fig. 14 / S VI-B: povray, tonto, wrf, gamess, hmmer, sjeng, h264ref
  // never enable ECC-Downgrade at MPKC threshold 2 - their peak traffic
  // (MPKI * IPC * max phase multiplier 1.6) stays below 2 MPKC.
  for (const char* name :
       {"povray", "tonto", "wrf", "gamess", "hmmer", "sjeng", "h264ref"}) {
    const auto& b = benchmark(name);
    EXPECT_LT(b.mpki * b.paper_ipc * 1.6, 2.0) << name;
  }
  // While the med/high benchmarks can exceed it at peak.
  for (const char* name : {"namd", "soplex", "libquantum"}) {
    const auto& b = benchmark(name);
    EXPECT_GT(b.mpki * b.paper_ipc * 1.6, 2.0) << name;
  }
}

}  // namespace
}  // namespace mecc::trace
