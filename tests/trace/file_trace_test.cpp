#include "trace/file_trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace mecc::trace {
namespace {

class FileTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "mecc_trace_test.trc";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write(const std::string& contents) {
    std::ofstream out(path_);
    out << contents;
  }

  std::string path_;
};

TEST_F(FileTraceTest, ParsesBasicRecords) {
  write("# a comment\n"
        "10 R 0x1000\n"
        "0 W 0x2040\n"
        "\n"
        "5 R 0x3000  # trailing comment\n");
  FileTrace t(path_);
  EXPECT_EQ(t.size(), 3u);
  const TraceRecord a = t.next();
  EXPECT_EQ(a.gap, 10u);
  EXPECT_FALSE(a.is_write);
  EXPECT_EQ(a.line_addr, 0x1000u);
  const TraceRecord b = t.next();
  EXPECT_TRUE(b.is_write);
  EXPECT_EQ(b.line_addr, 0x2040u);
  const TraceRecord c = t.next();
  EXPECT_EQ(c.gap, 5u);
}

TEST_F(FileTraceTest, AddressesLineAligned) {
  write("0 R 0x1023\n");  // unaligned: must snap to 0x1000
  FileTrace t(path_);
  EXPECT_EQ(t.next().line_addr, 0x1000u);
}

TEST_F(FileTraceTest, LoopsWithLapCount) {
  write("1 R 0x0\n2 W 0x40\n");
  FileTrace t(path_);
  for (int i = 0; i < 5; ++i) (void)t.next();
  EXPECT_EQ(t.laps(), 2u);  // 5 reads over 2 records = 2 full laps
}

TEST_F(FileTraceTest, RejectsMissingFile) {
  EXPECT_THROW(FileTrace("/nonexistent/trace.trc"), std::runtime_error);
}

TEST_F(FileTraceTest, RejectsMalformedType) {
  write("1 X 0x1000\n");
  EXPECT_THROW(FileTrace{path_}, std::runtime_error);
}

TEST_F(FileTraceTest, RejectsEmptyFile) {
  write("# only comments\n");
  EXPECT_THROW(FileTrace{path_}, std::runtime_error);
}

TEST_F(FileTraceTest, RoundTripThroughWriter) {
  GeneratorSource src(benchmark("astar"), GeneratorConfig{.seed = 5});
  const auto records = capture(src, 500);
  write_trace_file(path_, records);
  FileTrace t(path_);
  ASSERT_EQ(t.size(), 500u);
  for (const auto& expect : records) {
    const TraceRecord got = t.next();
    EXPECT_EQ(got.gap, expect.gap);
    EXPECT_EQ(got.is_write, expect.is_write);
    EXPECT_EQ(got.line_addr, expect.line_addr);
  }
}

TEST_F(FileTraceTest, VectorConstructor) {
  std::vector<TraceRecord> recs = {{.gap = 1, .is_write = false,
                                    .line_addr = 0x40}};
  FileTrace t(recs);
  EXPECT_EQ(t.next().line_addr, 0x40u);
  EXPECT_THROW(FileTrace(std::vector<TraceRecord>{}), std::runtime_error);
}

}  // namespace
}  // namespace mecc::trace
