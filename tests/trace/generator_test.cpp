#include "trace/generator.h"

#include <gtest/gtest.h>

#include <set>

namespace mecc::trace {
namespace {

GeneratorConfig cfg(std::uint64_t seed = 1) {
  GeneratorConfig c;
  c.seed = seed;
  return c;
}

TEST(TraceGenerator, Deterministic) {
  const auto& b = benchmark("milc");
  TraceGenerator g1(b, cfg(42));
  TraceGenerator g2(b, cfg(42));
  for (int i = 0; i < 1000; ++i) {
    const TraceRecord r1 = g1.next();
    const TraceRecord r2 = g2.next();
    EXPECT_EQ(r1.gap, r2.gap);
    EXPECT_EQ(r1.line_addr, r2.line_addr);
    EXPECT_EQ(r1.is_write, r2.is_write);
  }
}

TEST(TraceGenerator, DifferentSeedsDiffer) {
  const auto& b = benchmark("milc");
  TraceGenerator g1(b, cfg(1));
  TraceGenerator g2(b, cfg(2));
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (g1.next().line_addr == g2.next().line_addr) ++same;
  }
  EXPECT_LT(same, 20);
}

class MpkiConvergence : public ::testing::TestWithParam<const char*> {};

TEST_P(MpkiConvergence, LongRunMpkiMatchesProfile) {
  const auto& b = benchmark(GetParam());
  GeneratorConfig c = cfg(7);
  c.phase_length_insts = 500'000;  // several full schedules in the run
  TraceGenerator g(b, c);
  std::uint64_t insts = 0;
  std::uint64_t accesses = 0;
  while (insts < 16'000'000) {
    const TraceRecord r = g.next();
    insts += r.gap + 1;
    ++accesses;
  }
  const double mpki = static_cast<double>(accesses) * 1000.0 /
                      static_cast<double>(insts);
  EXPECT_NEAR(mpki / b.mpki, 1.0, 0.10) << b.name;
}

INSTANTIATE_TEST_SUITE_P(FourBenchmarks, MpkiConvergence,
                         ::testing::Values("gamess", "astar", "milc",
                                           "libquantum"));

TEST(TraceGenerator, ReadFractionMatchesProfile) {
  const auto& b = benchmark("lbm");  // 0.5 read fraction
  TraceGenerator g(b, cfg(9));
  int reads = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (!g.next().is_write) ++reads;
  }
  EXPECT_NEAR(static_cast<double>(reads) / kN, b.read_fraction, 0.02);
}

TEST(TraceGenerator, AddressesStayInFootprint) {
  const auto& b = benchmark("gamess");  // 4 MB footprint
  GeneratorConfig c = cfg(3);
  c.footprint_scale = 1.0;
  TraceGenerator g(b, c);
  const Address limit = g.footprint_lines() * kLineBytes;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(g.next().line_addr, limit);
  }
}

TEST(TraceGenerator, FootprintScaleShrinksFootprint) {
  const auto& b = benchmark("milc");
  GeneratorConfig full = cfg(1);
  full.footprint_scale = 1.0;
  GeneratorConfig scaled = cfg(1);
  scaled.footprint_scale = 0.01;
  TraceGenerator gf(b, full);
  TraceGenerator gs(b, scaled);
  EXPECT_NEAR(static_cast<double>(gf.footprint_lines()) /
                  static_cast<double>(gs.footprint_lines()),
              100.0, 1.0);
}

TEST(TraceGenerator, FootprintLinesMatchProfile) {
  const auto& b = benchmark("bwaves");  // 400.1 MB
  GeneratorConfig c = cfg(1);
  c.footprint_scale = 1.0;
  TraceGenerator g(b, c);
  EXPECT_NEAR(static_cast<double>(g.footprint_lines()),
              400.1 * 1024 * 1024 / 64, 1.0);
}

TEST(TraceGenerator, HighLocalityProducesSequentialRuns) {
  const auto& b = benchmark("libquantum");  // row_locality 0.85
  TraceGenerator g(b, cfg(5));
  int sequential = 0;
  Address prev = g.next().line_addr;
  const int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const Address cur = g.next().line_addr;
    if (cur == prev + kLineBytes) ++sequential;
    prev = cur;
  }
  EXPECT_NEAR(static_cast<double>(sequential) / kN, b.row_locality, 0.03);
}

TEST(TraceGenerator, LowLocalityJumpsAround) {
  const auto& b = benchmark("omnetpp");  // row_locality 0.25
  TraceGenerator g(b, cfg(5));
  int sequential = 0;
  Address prev = g.next().line_addr;
  const int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const Address cur = g.next().line_addr;
    if (cur == prev + kLineBytes) ++sequential;
    prev = cur;
  }
  EXPECT_NEAR(static_cast<double>(sequential) / kN, b.row_locality, 0.03);
}

TEST(TraceGenerator, PhaseMultiplierVariesOverTime) {
  const auto& b = benchmark("astar");
  GeneratorConfig c = cfg(11);
  c.phase_length_insts = 100'000;
  TraceGenerator g(b, c);
  std::set<double> seen;
  std::uint64_t insts = 0;
  while (insts < 500'000) {
    seen.insert(g.phase_multiplier());
    insts += g.next().gap + 1;
  }
  EXPECT_GE(seen.size(), 3u);  // walked through several phases
}

TEST(TraceGenerator, PhaseScheduleAveragesToOne) {
  // The schedule multipliers must average 1 so long-run MPKI is unbiased.
  const auto& b = benchmark("astar");
  GeneratorConfig c = cfg(1);
  c.phase_length_insts = 1000;
  TraceGenerator g(b, c);
  double sum = 0.0;
  int n = 0;
  std::uint64_t insts = 0;
  double last = -1.0;
  while (n < 4) {
    const double m = g.phase_multiplier();
    if (m != last) {
      sum += m;
      ++n;
      last = m;
    }
    insts += g.next().gap + 1;
    ASSERT_LT(insts, 100'000u);
  }
  EXPECT_NEAR(sum / 4.0, 1.0, 1e-9);
}

TEST(TraceGenerator, RegionCoverageApproachesFootprint) {
  // Even a modest access count touches every 1 MB region of the
  // footprint (what MDT measures in Fig. 11).
  const auto& b = benchmark("wrf");  // 78 MB footprint, MPKI 0.55
  GeneratorConfig c = cfg(13);
  c.footprint_scale = 1.0;
  TraceGenerator g(b, c);
  std::set<Address> regions;
  for (int i = 0; i < 20000; ++i) {
    regions.insert(g.next().line_addr >> 20);  // 1 MB regions
  }
  EXPECT_GE(regions.size(), 76u);
  EXPECT_LE(regions.size(), 79u);
}

}  // namespace
}  // namespace mecc::trace
